//! Dual active-set quadratic-program solver (Goldfarb–Idnani).

use std::cell::RefCell;
use std::sync::Arc;

use eucon_math::{Cholesky, Lu, MathError, Matrix, Vector};

use crate::QpError;

/// Absolute tolerance for constraint violation and multiplier tests,
/// applied relative to the problem scale.
const TOL: f64 = 1e-10;

/// Solution of a [`QuadProg`] problem.
#[derive(Debug, Clone)]
pub struct QpSolution {
    /// The minimizer.
    pub x: Vector,
    /// Lagrange multipliers, one per inequality row (zero for inactive
    /// constraints).  All multipliers are non-negative at the optimum.
    pub multipliers: Vector,
    /// Indices of the constraints active at the solution.
    pub active: Vec<usize>,
    /// Number of active-set changes the solver performed.  A warm start
    /// that already identifies the optimal active set reports zero.
    pub iterations: usize,
}

impl QpSolution {
    /// Evaluates `½xᵀHx + fᵀx` at the solution for the given objective.
    pub fn objective(&self, h: &Matrix, f: &Vector) -> f64 {
        0.5 * self.x.dot(&h.mul_vec(&self.x)) + f.dot(&self.x)
    }
}

/// A strictly convex quadratic program
/// `min ½xᵀHx + fᵀx` subject to `Gx ≤ h`.
///
/// Solved by the dual active-set method of Goldfarb & Idnani (1983) — the
/// algorithm family used by production QP codes (`quadprog`, MATLAB's
/// medium-scale `lsqlin`).  The dual method starts from the unconstrained
/// minimum `x = −H⁻¹f` and adds violated constraints one at a time, so it
/// never needs a feasible starting point and certifies infeasibility.
///
/// For repeated solves that share `H` and `G` (the controller hot path),
/// use [`PreparedQp`], which factorizes `H` and precomputes per-constraint
/// back-solves once instead of on every call.
///
/// # Example
///
/// ```
/// use eucon_math::{Matrix, Vector};
/// use eucon_qp::QuadProg;
///
/// # fn main() -> Result<(), eucon_qp::QpError> {
/// // min ½‖x‖² s.t. x0 ≥ 1 (written as −x0 ≤ −1)
/// let qp = QuadProg::new(Matrix::identity(2), Vector::zeros(2))?
///     .ineq_rows(&[&[-1.0, 0.0]], &[-1.0]);
/// let sol = qp.solve()?;
/// assert!((sol.x[0] - 1.0).abs() < 1e-9);
/// assert!(sol.x[1].abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct QuadProg {
    h: Matrix,
    f: Vector,
    g: Matrix,
    hvec: Vector,
}

impl QuadProg {
    /// Creates a QP with the given objective and no constraints.
    ///
    /// # Errors
    ///
    /// Returns [`QpError::DimensionMismatch`] when `f.len() != h.rows()`,
    /// and [`QpError::NotStrictlyConvex`] when `h` is not square or not
    /// positive definite.
    pub fn new(h: Matrix, f: Vector) -> Result<Self, QpError> {
        if !h.is_square() {
            return Err(QpError::NotStrictlyConvex);
        }
        if f.len() != h.rows() {
            return Err(QpError::DimensionMismatch(format!(
                "objective dimension {} does not match hessian order {}",
                f.len(),
                h.rows()
            )));
        }
        let n = h.rows();
        Ok(QuadProg {
            h,
            f,
            g: Matrix::zeros(0, n),
            hvec: Vector::zeros(0),
        })
    }

    /// Appends inequality constraints `G x ≤ h` given as a matrix.
    ///
    /// # Panics
    ///
    /// Panics if `g.cols()` does not match the number of variables or if
    /// `g.rows() != h.len()`.
    pub fn ineq(mut self, g: Matrix, h: Vector) -> Self {
        assert_eq!(
            g.cols(),
            self.h.rows(),
            "constraint row width must match variable count"
        );
        assert_eq!(
            g.rows(),
            h.len(),
            "constraint matrix and rhs must have equal rows"
        );
        self.g = if self.g.rows() == 0 {
            g
        } else {
            self.g.vstack(&g)
        };
        self.hvec = self.hvec.concat(&h);
        self
    }

    /// Appends inequality constraints given as slices of rows.
    ///
    /// # Panics
    ///
    /// Panics on mismatched dimensions (see [`QuadProg::ineq`]).
    pub fn ineq_rows(self, rows: &[&[f64]], rhs: &[f64]) -> Self {
        if rows.is_empty() {
            return self;
        }
        self.ineq(Matrix::from_rows(rows), Vector::from_slice(rhs))
    }

    /// Number of decision variables.
    pub fn num_vars(&self) -> usize {
        self.h.rows()
    }

    /// Number of inequality constraints.
    pub fn num_constraints(&self) -> usize {
        self.g.rows()
    }

    /// Solves the program.
    ///
    /// # Errors
    ///
    /// * [`QpError::NotStrictlyConvex`] — `H` has a non-positive eigenvalue.
    /// * [`QpError::Infeasible`] — no point satisfies all constraints.
    /// * [`QpError::IterationLimit`] — active-set cycling (should not occur
    ///   for well-scaled inputs).
    pub fn solve(&self) -> Result<QpSolution, QpError> {
        self.solve_warm(&[])
    }

    /// Solves the program starting from a guessed active set (typically the
    /// active set of the previous solve of a slowly varying problem).
    ///
    /// The guess only affects the starting point of the dual iteration, not
    /// the solution: indices that are out of range or not actually active
    /// at the optimum are discarded along the way, and a guess whose
    /// equality subproblem is singular falls back to a cold start.  When
    /// the guess is exact the solver performs zero active-set iterations.
    ///
    /// # Errors
    ///
    /// Same conditions as [`QuadProg::solve`].
    pub fn solve_warm(&self, warm: &[usize]) -> Result<QpSolution, QpError> {
        if self.num_vars() == 0 {
            return Ok(empty_solution(self.num_constraints()));
        }
        let chol = factorize(&self.h)?;
        let base_scale = self.g.max_abs().max(self.h.max_abs()).max(1.0);
        solve_with_chol(
            &chol, &self.f, &self.g, &self.hvec, base_scale, None, warm, None,
        )
    }

    /// Maximum KKT residual of a candidate solution: stationarity,
    /// feasibility and complementary slackness.  Useful for verification.
    pub fn kkt_residual(&self, sol: &QpSolution) -> f64 {
        // Stationarity: Hx + f + Gᵀλ = 0.
        let mut grad = &self.h.mul_vec(&sol.x) + &self.f;
        for i in 0..self.num_constraints() {
            let lam = sol.multipliers[i];
            for (j, gij) in self.g.row(i).iter().enumerate() {
                grad[j] += lam * gij;
            }
        }
        let mut worst = grad.max_abs();
        for i in 0..self.num_constraints() {
            let slack = self.hvec[i] - dot_row(&self.g, i, &sol.x);
            // Primal feasibility.
            worst = worst.max(-slack);
            // Dual feasibility.
            worst = worst.max(-sol.multipliers[i]);
            // Complementary slackness.
            worst = worst.max((sol.multipliers[i] * slack).abs());
        }
        worst
    }
}

/// Per-constraint quantities that depend only on `H` and `G`, precomputed
/// once and reused by every [`PreparedQp::solve`] call.
///
/// With the constraint normals `n_i = −g_iᵀ` (the `≥` orientation used by
/// the dual method), the cache stores every back-solve `H⁻¹n_i` and the
/// full Gram table `D[(a,b)] = n_aᵀH⁻¹n_b`.  The dual iteration's
/// subproblem matrix `M = NᵀH⁻¹N` and right-hand side are then submatrix
/// lookups instead of Cholesky back-substitutions.
#[derive(Debug, Clone)]
pub(crate) struct ConstraintCache {
    /// `hinv_n[i] = H⁻¹ n_i`.
    hinv_n: Vec<Vector>,
    /// `d[(a, b)] = n_a · H⁻¹ n_b` for every constraint pair.
    d: Matrix,
}

impl ConstraintCache {
    fn build(chol: &Cholesky, g: &Matrix) -> Result<Self, QpError> {
        let m = g.rows();
        let mut hinv_n = Vec::with_capacity(m);
        for i in 0..m {
            let ni = Vector::from_iter(g.row(i).iter().map(|v| -v));
            hinv_n.push(chol.solve(&ni)?);
        }
        let mut d = Matrix::zeros(m, m);
        for a in 0..m {
            for b in 0..m {
                // n_a · H⁻¹n_b = −g_a · H⁻¹n_b.
                d[(a, b)] = -dot_row(g, a, &hinv_n[b]);
            }
        }
        Ok(ConstraintCache { hinv_n, d })
    }
}

/// Memoized LU factors of the warm-start equality subproblems.
///
/// The subproblem matrix `M = NᵀH⁻¹N` is a pure function of the active-set
/// guess (`H` and `G` are fixed for a [`PreparedQp`]), and on the
/// controller hot path the active set is usually *identical* between
/// consecutive periods — only the right-hand side moves.  Re-using the
/// factor turns the per-period `O(q³)` decomposition into an `O(q²)`
/// back-substitution.  Because [`Lu::decompose`] is deterministic, a
/// cache hit yields bit-identical multipliers to a fresh factorization,
/// so solver trajectories (and the golden trace hashes built on them) are
/// unchanged.
#[derive(Debug, Clone, Default)]
pub(crate) struct WarmFactors {
    /// Active set (deduplicated, in guess order) the factors belong to.
    cand: Vec<usize>,
    /// LU factor of the full subproblem matrix over `cand`.
    full: Option<Lu>,
    /// Position within `cand` whose removal `reduced` corresponds to.
    reduced_weakest: usize,
    /// LU factor of the tentative-drop subproblem (`cand` minus
    /// `reduced_weakest`), used by the degeneracy alignment step.
    reduced: Option<Lu>,
}

/// The immutable heart of a [`PreparedQp`]: everything fixed at
/// preparation time (`H`, `G`, the Cholesky factor, the constraint cache,
/// the tolerance scale).
///
/// Held behind an [`Arc`] so cloning a prepared problem — e.g. fanning a
/// homogeneous fleet's shared model out to thousands of loops — shares
/// one copy of the expensive factorizations instead of deep-copying them.
/// Nothing in here ever mutates after construction; all per-solve mutable
/// state (the warm-start memo) lives outside the `Arc`, per clone.
#[derive(Debug)]
struct QpCore {
    h: Matrix,
    g: Matrix,
    chol: Cholesky,
    cache: ConstraintCache,
    /// `max(|G|, |H|, 1)`; the per-solve tolerance also folds in `|h|`.
    base_scale: f64,
}

/// A quadratic program with fixed `H` and `G`, prepared for repeated
/// solves with varying `f` and `h`.
///
/// Construction performs the only Cholesky factorization of `H` and builds
/// the [`ConstraintCache`]; each subsequent [`solve`](PreparedQp::solve) is
/// a pair of triangular back-substitutions plus active-set bookkeeping.
/// This matches the controller hot path, where the plant model (hence `H`
/// and the constraint matrix) never changes between sampling periods while
/// the set-point error (`f`) and constraint slacks (`h`) do.
///
/// Cloning is cheap: the immutable model ([`QpCore`]) is shared through an
/// `Arc`, and only the per-instance warm-start memo is copied — so N
/// homogeneous controllers hold one factorization, not N.  A clone's
/// solves are bit-identical to the original's regardless of sharing
/// (the shared state never mutates; the memo is deterministic).
#[derive(Debug)]
pub struct PreparedQp {
    core: Arc<QpCore>,
    /// Warm-start subproblem factors memoized across solves (see
    /// [`WarmFactors`]); interior mutability keeps [`PreparedQp::solve`]
    /// callable through a shared reference.  Per clone, outside the
    /// shared core.
    warm_factors: RefCell<WarmFactors>,
}

impl Clone for PreparedQp {
    /// Shares the immutable model; copies the warm-start memo state as-is
    /// (a pristine instance clones to a pristine instance).
    fn clone(&self) -> Self {
        PreparedQp {
            core: Arc::clone(&self.core),
            warm_factors: RefCell::new(self.warm_factors.borrow().clone()),
        }
    }
}

impl PreparedQp {
    /// Factorizes `H` and precomputes the per-constraint back-solves.
    ///
    /// # Errors
    ///
    /// * [`QpError::NotStrictlyConvex`] — `h` is not square or not positive
    ///   definite.
    /// * [`QpError::DimensionMismatch`] — `g.cols() != h.rows()`.
    pub fn new(h: Matrix, g: Matrix) -> Result<Self, QpError> {
        if !h.is_square() {
            return Err(QpError::NotStrictlyConvex);
        }
        if g.cols() != h.rows() {
            return Err(QpError::DimensionMismatch(format!(
                "constraint row width {} does not match hessian order {}",
                g.cols(),
                h.rows()
            )));
        }
        let chol = factorize(&h)?;
        let cache = ConstraintCache::build(&chol, &g)?;
        let base_scale = g.max_abs().max(h.max_abs()).max(1.0);
        Ok(PreparedQp {
            core: Arc::new(QpCore {
                h,
                g,
                chol,
                cache,
                base_scale,
            }),
            warm_factors: RefCell::new(WarmFactors::default()),
        })
    }

    /// Number of decision variables.
    pub fn num_vars(&self) -> usize {
        self.core.h.rows()
    }

    /// Number of inequality constraints.
    pub fn num_constraints(&self) -> usize {
        self.core.g.rows()
    }

    /// The Hessian this problem was prepared with.
    pub fn hessian(&self) -> &Matrix {
        &self.core.h
    }

    /// Whether `self` and `other` share one immutable model (`H`, `G`,
    /// Cholesky factor, constraint cache) — true exactly for clones of a
    /// common ancestor.  Probe for the fleet's shared-model cache tests;
    /// sharing never changes results, only memory.
    pub fn shares_model(&self, other: &PreparedQp) -> bool {
        Arc::ptr_eq(&self.core, &other.core)
    }

    /// Lower bandwidth the Cholesky factorization detected in `H`.
    ///
    /// The MPC Hessian `CᵀC + εI` is block banded when the subtask
    /// allocation couples only nearby tasks; anything below
    /// `num_vars() - 1` means the banded `O(n·b²)` factor/solve paths are
    /// in effect for this problem.
    pub fn hessian_bandwidth(&self) -> usize {
        self.core.chol.bandwidth()
    }

    /// The constraint matrix this problem was prepared with.
    pub fn constraints(&self) -> &Matrix {
        &self.core.g
    }

    /// Incremental constraint-set shrink: keeps the rows of `G` selected
    /// by `keep`, reusing the Cholesky factor of the unchanged `H` and
    /// *extracting* the retained per-constraint back-solves and Gram-table
    /// entries instead of recomputing them.
    ///
    /// Bit-identical to `PreparedQp::new(h.clone(), g_retained)`: a
    /// rebuild would recompute exactly the values being copied (`H` and
    /// the retained rows of `G` are unchanged, and both the back-solves
    /// and the Gram products are deterministic), so the next
    /// [`solve`](PreparedQp::solve) follows the same trajectory bit for
    /// bit.  Cost is `O(k²)` table extraction instead of the `O(k·n²)`
    /// back-solves plus `O(k²·n)` Gram products of a rebuild.
    ///
    /// # Errors
    ///
    /// [`QpError::DimensionMismatch`] — `keep.len()` differs from the
    /// constraint count.
    pub fn retain_constraints(&self, keep: &[bool]) -> Result<PreparedQp, QpError> {
        if keep.len() != self.num_constraints() {
            return Err(QpError::DimensionMismatch(format!(
                "keep mask length {} does not match constraint count {}",
                keep.len(),
                self.num_constraints()
            )));
        }
        let kept: Vec<usize> = keep
            .iter()
            .enumerate()
            .filter_map(|(i, &k)| k.then_some(i))
            .collect();
        let core = &self.core;
        let g = Matrix::from_fn(kept.len(), self.num_vars(), |r, c| core.g[(kept[r], c)]);
        let hinv_n: Vec<Vector> = kept.iter().map(|&i| core.cache.hinv_n[i].clone()).collect();
        let d = Matrix::from_fn(kept.len(), kept.len(), |a, b| {
            core.cache.d[(kept[a], kept[b])]
        });
        let base_scale = g.max_abs().max(core.h.max_abs()).max(1.0);
        Ok(PreparedQp {
            core: Arc::new(QpCore {
                h: core.h.clone(),
                g,
                chol: core.chol.clone(),
                cache: ConstraintCache { hinv_n, d },
                base_scale,
            }),
            warm_factors: RefCell::new(WarmFactors::default()),
        })
    }

    /// Incremental constraint-set growth: appends the rows of `extra` to
    /// `G`, computing back-solves and Gram entries only for the new rows
    /// (the existing table is copied — `H` and the old rows are unchanged,
    /// so a rebuild would recompute the same bits).
    ///
    /// Bit-identical to `PreparedQp::new(h.clone(), g.vstack(extra))` for
    /// the same reason as [`retain_constraints`](Self::retain_constraints).
    ///
    /// # Errors
    ///
    /// [`QpError::DimensionMismatch`] — `extra.cols()` differs from the
    /// variable count.
    pub fn append_constraints(&self, extra: &Matrix) -> Result<PreparedQp, QpError> {
        if extra.cols() != self.num_vars() {
            return Err(QpError::DimensionMismatch(format!(
                "appended constraint row width {} does not match variable count {}",
                extra.cols(),
                self.num_vars()
            )));
        }
        let core = &self.core;
        let m0 = core.g.rows();
        let g = if m0 == 0 {
            extra.clone()
        } else {
            core.g.vstack(extra)
        };
        let m = g.rows();
        let mut hinv_n = core.cache.hinv_n.clone();
        hinv_n.reserve(m - m0);
        for i in m0..m {
            let ni = Vector::from_iter(g.row(i).iter().map(|v| -v));
            hinv_n.push(core.chol.solve(&ni)?);
        }
        let mut d = Matrix::zeros(m, m);
        for a in 0..m {
            for b in 0..m {
                d[(a, b)] = if a < m0 && b < m0 {
                    core.cache.d[(a, b)]
                } else {
                    -dot_row(&g, a, &hinv_n[b])
                };
            }
        }
        let base_scale = g.max_abs().max(core.h.max_abs()).max(1.0);
        Ok(PreparedQp {
            core: Arc::new(QpCore {
                h: core.h.clone(),
                g,
                chol: core.chol.clone(),
                cache: ConstraintCache { hinv_n, d },
                base_scale,
            }),
            warm_factors: RefCell::new(WarmFactors::default()),
        })
    }

    /// Solves `min ½xᵀHx + fᵀx` s.t. `Gx ≤ hvec` for the prepared `H`, `G`.
    ///
    /// `warm` seeds the active set (see [`QuadProg::solve_warm`]); pass an
    /// empty slice for a cold start.
    ///
    /// # Errors
    ///
    /// Same conditions as [`QuadProg::solve`], except
    /// [`QpError::NotStrictlyConvex`] which was already ruled out at
    /// construction.
    ///
    /// # Panics
    ///
    /// Panics if `f` or `hvec` have lengths inconsistent with the prepared
    /// problem.
    pub fn solve(&self, f: &Vector, hvec: &Vector, warm: &[usize]) -> Result<QpSolution, QpError> {
        assert_eq!(
            f.len(),
            self.num_vars(),
            "objective length must match variable count"
        );
        assert_eq!(
            hvec.len(),
            self.num_constraints(),
            "rhs length must match constraint count"
        );
        if self.num_vars() == 0 {
            return Ok(empty_solution(self.num_constraints()));
        }
        solve_with_chol(
            &self.core.chol,
            f,
            &self.core.g,
            hvec,
            self.core.base_scale,
            Some(&self.core.cache),
            warm,
            Some(&self.warm_factors),
        )
    }
}

fn empty_solution(m: usize) -> QpSolution {
    QpSolution {
        x: Vector::zeros(0),
        multipliers: Vector::zeros(m),
        active: Vec::new(),
        iterations: 0,
    }
}

pub(crate) fn factorize(h: &Matrix) -> Result<Cholesky, QpError> {
    Cholesky::decompose(h).map_err(|e| match e {
        MathError::NotPositiveDefinite => QpError::NotStrictlyConvex,
        other => QpError::Math(other),
    })
}

/// Shared Goldfarb–Idnani core used by [`QuadProg`], [`PreparedQp`] and the
/// least-squares front end.  `base_scale` is `max(|G|, |H|, 1)`; `cache`
/// supplies precomputed back-solves when `H`/`G` are fixed across calls,
/// and `factors` memoizes the warm-start subproblem factorization across
/// calls with a stable active set.
#[allow(clippy::too_many_arguments)] // internal plumbing shared by three front ends
pub(crate) fn solve_with_chol(
    chol: &Cholesky,
    f: &Vector,
    g: &Matrix,
    hvec: &Vector,
    base_scale: f64,
    cache: Option<&ConstraintCache>,
    warm: &[usize],
    factors: Option<&RefCell<WarmFactors>>,
) -> Result<QpSolution, QpError> {
    let n = f.len();
    let m = g.rows();
    // Unconstrained minimum.
    let x0 = chol.solve(&(-f))?;
    let tol = TOL * base_scale.max(hvec.max_abs());
    let max_iter = 50 * (m + 1);

    let mut x = x0.clone();
    // `active` and `u` stay parallel throughout; `in_active` mirrors
    // membership for O(1) tests.  `hinv_act` (= H⁻¹n_j for each active j)
    // is maintained only without a constraint cache — with one, the
    // back-solves are read from the shared table instead of being cloned
    // per active-set change (see [`hinv_at`]).
    let mut active: Vec<usize> = Vec::new();
    let mut u: Vec<f64> = Vec::new();
    let mut hinv_act: Vec<Vector> = Vec::new();
    let mut in_active = vec![false; m];

    if !warm.is_empty() {
        if let Some((wx, wa, wu, wh)) =
            try_warm_start(chol, g, hvec, cache, &x0, warm, tol, n, factors)
        {
            x = wx;
            active = wa;
            u = wu;
            hinv_act = wh;
            for &a in &active {
                in_active[a] = true;
            }
        }
    }

    let mut iterations = 0;

    'outer: loop {
        // Most violated inactive constraint (g_p·x − h_p > tol).
        let mut p = None;
        let mut worst = tol;
        for i in 0..m {
            if in_active[i] {
                continue;
            }
            let viol = dot_row(g, i, &x) - hvec[i];
            if viol > worst {
                worst = viol;
                p = Some(i);
            }
        }
        let Some(p) = p else {
            let mut multipliers = Vector::zeros(m);
            for (idx, &c) in active.iter().enumerate() {
                multipliers[c] = u[idx];
            }
            return Ok(QpSolution {
                x,
                multipliers,
                active,
                iterations,
            });
        };

        // H⁻¹n_p for the normal n_p = −g_pᵀ of constraint p in `≥`
        // orientation; fixed while p is being added, so hoisted out of the
        // inner loop.
        let hinv_np_owned;
        let hinv_np: &Vector = match cache {
            Some(c) => &c.hinv_n[p],
            None => {
                let np = Vector::from_iter(g.row(p).iter().map(|v| -v));
                hinv_np_owned = chol.solve(&np)?;
                &hinv_np_owned
            }
        };
        let mut u_p = 0.0;

        loop {
            iterations += 1;
            if iterations > max_iter {
                return Err(QpError::IterationLimit { iterations });
            }

            // z: primal step direction; r: dual step for active set.
            let q = active.len();
            let (z, r) = if q == 0 {
                (hinv_np.clone(), Vec::new())
            } else {
                // M = Nᵀ H⁻¹ N, rhs = Nᵀ H⁻¹ n_p, from the cache when
                // available, else from the stored back-solves.
                let mut mmat = Matrix::zeros(q, q);
                let mut rhs = Vector::zeros(q);
                for a in 0..q {
                    for b in 0..q {
                        mmat[(a, b)] = cross(
                            g,
                            cache,
                            active[a],
                            active[b],
                            hinv_at(cache, &hinv_act, &active, b),
                        );
                    }
                    rhs[a] = cross(g, cache, active[a], p, hinv_np);
                }
                let r = mmat.solve(&rhs).map_err(QpError::Math)?;
                let mut z = hinv_np.clone();
                for b in 0..q {
                    z.axpy(-r[b], hinv_at(cache, &hinv_act, &active, b));
                }
                (z, r.into_vec())
            };

            // Maximum step preserving non-negative multipliers.
            let mut t1 = f64::INFINITY;
            let mut drop_idx = None;
            for (j, &rj) in r.iter().enumerate() {
                if rj > tol {
                    let ratio = u[j] / rj;
                    if ratio < t1 {
                        t1 = ratio;
                        drop_idx = Some(j);
                    }
                }
            }

            // z·n_p = −g_p·z.
            let ztnp = -dot_row(g, p, &z);
            if ztnp <= tol {
                // Constraint p cannot be satisfied by a primal move.
                if t1.is_infinite() {
                    return Err(QpError::Infeasible);
                }
                // Dual-only step: relax a blocking constraint.
                for (j, rj) in r.iter().enumerate() {
                    u[j] -= t1 * rj;
                }
                u_p += t1;
                let j = drop_idx.expect("finite t1 implies a blocking index");
                in_active[active[j]] = false;
                active.remove(j);
                u.remove(j);
                if cache.is_none() {
                    hinv_act.remove(j);
                }
                continue;
            }

            // Full step length: drive the violation of p to zero.
            let s_p = dot_row(g, p, &x) - hvec[p];
            let t2 = s_p / ztnp;
            let t = t1.min(t2);

            x.axpy(t, &z);
            for (j, rj) in r.iter().enumerate() {
                u[j] -= t * rj;
            }
            u_p += t;

            if t2 <= t1 {
                active.push(p);
                u.push(u_p);
                if cache.is_none() {
                    hinv_act.push(hinv_np.clone());
                }
                in_active[p] = true;
                continue 'outer;
            }
            let j = drop_idx.expect("t1 < t2 implies a blocking index");
            in_active[active[j]] = false;
            active.remove(j);
            u.remove(j);
            if cache.is_none() {
                hinv_act.remove(j);
            }
        }
    }
}

/// `n_a · H⁻¹n_b`, where `hinv_b` must equal `H⁻¹n_b`; reads the
/// precomputed Gram table when one is available.
fn cross(g: &Matrix, cache: Option<&ConstraintCache>, a: usize, b: usize, hinv_b: &Vector) -> f64 {
    match cache {
        Some(c) => c.d[(a, b)],
        None => -dot_row(g, a, hinv_b),
    }
}

/// Attempts to start the dual iteration from a guessed active set.
///
/// Solves the equality-constrained subproblem for the guess, dropping the
/// most negative multiplier until the remaining set is dual feasible
/// (`u ≥ 0`).  The resulting `(x, active, u)` satisfies the dual method's
/// invariant — `x` minimizes the objective over the span of the active
/// constraints with non-negative multipliers — so the main loop can resume
/// from it as if it had built that set itself.  Returns `None` (cold
/// start) when the subproblem is singular, e.g. for a stale guess with
/// linearly dependent rows.
#[allow(clippy::type_complexity, clippy::too_many_arguments)]
fn try_warm_start(
    chol: &Cholesky,
    g: &Matrix,
    hvec: &Vector,
    cache: Option<&ConstraintCache>,
    x0: &Vector,
    warm: &[usize],
    tol: f64,
    n: usize,
    factors: Option<&RefCell<WarmFactors>>,
) -> Option<(Vector, Vec<usize>, Vec<f64>, Vec<Vector>)> {
    let m = g.rows();
    let mut seen = vec![false; m];
    let mut cand: Vec<usize> = Vec::new();
    for &a in warm {
        if a < m && !seen[a] {
            seen[a] = true;
            cand.push(a);
        }
    }
    // More than n active constraints cannot be linearly independent.
    cand.truncate(n);

    loop {
        if cand.is_empty() {
            return None;
        }
        let q = cand.len();
        // With a constraint cache the back-solves `H⁻¹n_a` are read from
        // the shared table (no per-solve copies); without one they are
        // computed and owned here.
        let mut hinv: Vec<Vector> = Vec::new();
        if cache.is_none() {
            hinv.reserve(q);
            for &a in &cand {
                let na = Vector::from_iter(g.row(a).iter().map(|v| -v));
                hinv.push(chol.solve(&na).ok()?);
            }
        }
        // Subproblem matrix over the candidates, minus position `skip`
        // when given (the tentative-drop system).  Entries come from the
        // Gram table when cached, else from the owned back-solves — the
        // same values and order as assembling `M = NᵀH⁻¹N` directly.
        let build_m = |skip: Option<usize>| -> Matrix {
            let k = q - usize::from(skip.is_some());
            let mut mm = Matrix::zeros(k, k);
            for ra in 0..k {
                let a = ra + usize::from(skip.is_some_and(|s| ra >= s));
                for rb in 0..k {
                    let b = rb + usize::from(skip.is_some_and(|s| rb >= s));
                    mm[(ra, rb)] = match cache {
                        Some(c) => c.d[(cand[a], cand[b])],
                        None => -dot_row(g, cand[a], &hinv[b]),
                    };
                }
            }
            mm
        };

        // M u = b_A − Nᵀx0, with b_a = −hvec[a] and n_a = −g_aᵀ, i.e.
        // rhs[a] = g_a·x0 − hvec[a].
        let mut rhs = Vector::zeros(q);
        for a in 0..q {
            rhs[a] = dot_row(g, cand[a], x0) - hvec[cand[a]];
        }
        // `M` depends only on the candidate set, so its LU factor is
        // memoized across solves (`Lu::decompose` is deterministic: a
        // cache hit is bit-identical to refactoring).  On the controller
        // hot path the active set repeats period after period, turning the
        // O(q³) decomposition into an O(q²) back-substitution.
        let solved = if let Some(fc) = factors {
            let mut fcb = fc.borrow_mut();
            if fcb.cand != cand {
                fcb.cand.clear();
                fcb.cand.extend_from_slice(&cand);
                fcb.full = None;
                fcb.reduced = None;
            }
            if fcb.full.is_none() {
                fcb.full = Some(Lu::decompose(&build_m(None)).ok()?);
            }
            fcb.full.as_ref().expect("factor set above").solve(&rhs)
        } else {
            build_m(None).solve(&rhs)
        };
        let Ok(u) = solved else {
            return None;
        };

        // Drop the most negative multiplier and re-solve, until the guess
        // is dual feasible.
        let mut worst_j = None;
        let mut worst_u = -tol;
        for j in 0..q {
            if u[j] < worst_u {
                worst_u = u[j];
                worst_j = Some(j);
            }
        }
        if let Some(j) = worst_j {
            cand.remove(j);
            continue;
        }

        // Dual feasibility alone is not enough to match the cold start on
        // degenerate problems: a guess row whose hyperplane passes within
        // tolerance of the true optimum is retained here with a small
        // positive multiplier, while a cold start never adds it (its
        // violation stays under `tol`) — two answers that differ at
        // tolerance level.  Align the two by applying the cold start's own
        // criterion: tentatively drop the weakest constraint and keep the
        // drop whenever the main loop would not re-add the row (violation
        // at the reduced optimum ≤ `tol`).  A genuinely active constraint
        // fails that test on the first try, so this costs one extra
        // subproblem solve in the common case.
        if q > 0 {
            let mut weakest = 0;
            for j in 1..q {
                if u[j] < u[weakest] {
                    weakest = j;
                }
            }
            let dropped = cand[weakest];
            let qr = q - 1;
            let viol_without = if qr == 0 {
                dot_row(g, dropped, x0) - hvec[dropped]
            } else {
                let mut rr = Vector::zeros(qr);
                for a in 0..qr {
                    let ca = cand[a + usize::from(a >= weakest)];
                    rr[a] = dot_row(g, ca, x0) - hvec[ca];
                }
                // The reduced factor is memoized under the same rule,
                // keyed by (candidate set, dropped position).
                let solved = if let Some(fc) = factors {
                    let mut fcb = fc.borrow_mut();
                    if fcb.reduced.is_none() || fcb.reduced_weakest != weakest {
                        fcb.reduced_weakest = weakest;
                        match Lu::decompose(&build_m(Some(weakest))) {
                            Ok(lu) => fcb.reduced = Some(lu),
                            Err(_) => {
                                fcb.reduced = None;
                                return None;
                            }
                        }
                    }
                    fcb.reduced.as_ref().expect("factor set above").solve(&rr)
                } else {
                    build_m(Some(weakest)).solve(&rr)
                };
                let Ok(ur) = solved else {
                    return None;
                };
                let mut xr = x0.clone();
                for b in 0..qr {
                    let hb = b + usize::from(b >= weakest);
                    xr.axpy(ur[b], hinv_at(cache, &hinv, &cand, hb));
                }
                dot_row(g, dropped, &xr) - hvec[dropped]
            };
            if viol_without <= tol {
                cand.remove(weakest);
                continue;
            }
        }

        let mut x = x0.clone();
        for b in 0..q {
            x.axpy(u[b], hinv_at(cache, &hinv, &cand, b));
        }
        return Some((x, cand, u.into_vec(), hinv));
    }
}

/// `H⁻¹n` of the constraint at position `b` of `idx`: a borrow from the
/// shared back-solve table when one exists, else from the solver's own
/// parallel array (which is only populated in that case).
fn hinv_at<'a>(
    cache: Option<&'a ConstraintCache>,
    owned: &'a [Vector],
    idx: &[usize],
    b: usize,
) -> &'a Vector {
    match cache {
        Some(c) => &c.hinv_n[idx[b]],
        None => &owned[b],
    }
}

fn dot_row(g: &Matrix, i: usize, x: &Vector) -> f64 {
    // Single-accumulator unrolled kernel: bit-identical to the naive sum.
    eucon_math::kernel::dot(g.row(i), x.as_slice())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_qp() -> QuadProg {
        QuadProg::new(Matrix::identity(2), Vector::zeros(2)).unwrap()
    }

    #[test]
    fn unconstrained_minimum() {
        // min ½‖x‖² − [1,2]·x → x = [1,2].
        let qp = QuadProg::new(Matrix::identity(2), Vector::from_slice(&[-1.0, -2.0])).unwrap();
        let sol = qp.solve().unwrap();
        assert!(sol.x.approx_eq(&Vector::from_slice(&[1.0, 2.0]), 1e-10));
        assert!(sol.active.is_empty());
    }

    #[test]
    fn single_active_constraint() {
        // min ½‖x‖² s.t. x0 ≥ 1.
        let qp = unit_qp().ineq_rows(&[&[-1.0, 0.0]], &[-1.0]);
        let sol = qp.solve().unwrap();
        assert!(sol.x.approx_eq(&Vector::from_slice(&[1.0, 0.0]), 1e-10));
        assert_eq!(sol.active, vec![0]);
        assert!((sol.multipliers[0] - 1.0).abs() < 1e-9);
        assert!(qp.kkt_residual(&sol) < 1e-9);
    }

    #[test]
    fn inactive_constraints_are_ignored() {
        // Same objective; constraint x0 ≤ 5 is never binding.
        let qp = unit_qp().ineq_rows(&[&[1.0, 0.0]], &[5.0]);
        let sol = qp.solve().unwrap();
        assert!(sol.x.max_abs() < 1e-10);
        assert!(sol.active.is_empty());
        assert_eq!(sol.multipliers[0], 0.0);
    }

    #[test]
    fn two_constraints_corner() {
        // min ½‖x − [2,2]‖² s.t. x0 ≤ 1, x1 ≤ 1 → corner [1,1].
        let qp = QuadProg::new(Matrix::identity(2), Vector::from_slice(&[-2.0, -2.0]))
            .unwrap()
            .ineq_rows(&[&[1.0, 0.0], &[0.0, 1.0]], &[1.0, 1.0]);
        let sol = qp.solve().unwrap();
        assert!(sol.x.approx_eq(&Vector::from_slice(&[1.0, 1.0]), 1e-10));
        assert_eq!(sol.active.len(), 2);
        assert!(qp.kkt_residual(&sol) < 1e-9);
    }

    #[test]
    fn constraint_drop_is_exercised() {
        // The unconstrained optimum violates both constraints, but only one
        // is active at the optimum, forcing an add-then-drop sequence for
        // some processing orders.
        // min ½‖x − [3,0]‖² s.t. x0 + x1 ≤ 1, x0 − x1 ≤ 1.
        let qp = QuadProg::new(Matrix::identity(2), Vector::from_slice(&[-3.0, 0.0]))
            .unwrap()
            .ineq_rows(&[&[1.0, 1.0], &[1.0, -1.0]], &[1.0, 1.0]);
        let sol = qp.solve().unwrap();
        // Optimum is x = [1, 0] with both constraints active.
        assert!(sol.x.approx_eq(&Vector::from_slice(&[1.0, 0.0]), 1e-9));
        assert!(qp.kkt_residual(&sol) < 1e-9);
    }

    #[test]
    fn detects_infeasible() {
        // x0 ≤ 0 and x0 ≥ 1 cannot both hold.
        let qp = unit_qp().ineq_rows(&[&[1.0, 0.0], &[-1.0, 0.0]], &[0.0, -1.0]);
        assert_eq!(qp.solve().unwrap_err(), QpError::Infeasible);
    }

    #[test]
    fn rejects_indefinite_hessian() {
        let h = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, -1.0]]);
        let qp = QuadProg::new(h, Vector::zeros(2)).unwrap();
        assert_eq!(qp.solve().unwrap_err(), QpError::NotStrictlyConvex);
    }

    #[test]
    fn rejects_dimension_mismatch() {
        assert!(matches!(
            QuadProg::new(Matrix::identity(2), Vector::zeros(3)),
            Err(QpError::DimensionMismatch(_))
        ));
    }

    #[test]
    fn empty_problem() {
        let qp = QuadProg::new(Matrix::zeros(0, 0), Vector::zeros(0)).unwrap();
        let sol = qp.solve().unwrap();
        assert!(sol.x.is_empty());
    }

    #[test]
    fn redundant_duplicate_constraints() {
        // The same constraint twice must not confuse the active set.
        let qp = QuadProg::new(Matrix::identity(1), Vector::from_slice(&[-2.0]))
            .unwrap()
            .ineq_rows(&[&[1.0], &[1.0]], &[1.0, 1.0]);
        let sol = qp.solve().unwrap();
        assert!((sol.x[0] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn equality_like_tight_box() {
        // 0.5 ≤ x0 ≤ 0.5 pins the variable.
        let qp = QuadProg::new(Matrix::identity(1), Vector::zeros(1))
            .unwrap()
            .ineq_rows(&[&[1.0], &[-1.0]], &[0.5, -0.5]);
        let sol = qp.solve().unwrap();
        assert!((sol.x[0] - 0.5).abs() < 1e-10);
    }

    #[test]
    fn coupled_hessian() {
        // Non-diagonal H exercises the Cholesky path.
        let h = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 2.0]]);
        let qp = QuadProg::new(h.clone(), Vector::from_slice(&[-1.0, -1.0]))
            .unwrap()
            .ineq_rows(&[&[-1.0, 0.0]], &[-0.5]);
        let sol = qp.solve().unwrap();
        assert!(qp.kkt_residual(&sol) < 1e-9);
        assert!(sol.x[0] >= 0.5 - 1e-10);
    }

    #[test]
    fn warm_start_with_exact_active_set_takes_zero_iterations() {
        // min ½‖x − [2,2]‖² s.t. x ≤ 1 per coordinate: both rows active.
        let qp = QuadProg::new(Matrix::identity(2), Vector::from_slice(&[-2.0, -2.0]))
            .unwrap()
            .ineq_rows(&[&[1.0, 0.0], &[0.0, 1.0]], &[1.0, 1.0]);
        let cold = qp.solve().unwrap();
        assert!(cold.iterations > 0);
        let warm = qp.solve_warm(&cold.active).unwrap();
        assert_eq!(warm.iterations, 0);
        assert!(warm.x.approx_eq(&cold.x, 1e-12));
        assert!(qp.kkt_residual(&warm) < 1e-9);
    }

    #[test]
    fn warm_start_with_wrong_guess_still_finds_optimum() {
        // Optimum activates row 0 only; seed with the other row.
        let qp = QuadProg::new(Matrix::identity(2), Vector::from_slice(&[-2.0, 0.0]))
            .unwrap()
            .ineq_rows(&[&[1.0, 0.0], &[0.0, 1.0]], &[1.0, 1.0]);
        let cold = qp.solve().unwrap();
        let warm = qp.solve_warm(&[1]).unwrap();
        assert!(warm.x.approx_eq(&cold.x, 1e-10));
        assert_eq!(warm.active, cold.active);
        assert!(qp.kkt_residual(&warm) < 1e-9);
    }

    #[test]
    fn warm_start_tolerates_garbage_indices() {
        let qp = unit_qp().ineq_rows(&[&[-1.0, 0.0]], &[-1.0]);
        let cold = qp.solve().unwrap();
        // Out-of-range and duplicate indices must be ignored, not panic.
        let warm = qp.solve_warm(&[7, 0, 0, 99]).unwrap();
        assert!(warm.x.approx_eq(&cold.x, 1e-10));
    }

    #[test]
    fn warm_start_with_dependent_rows_falls_back_to_cold() {
        // Duplicate rows make the warm subproblem singular.
        let qp = QuadProg::new(Matrix::identity(1), Vector::from_slice(&[-2.0]))
            .unwrap()
            .ineq_rows(&[&[1.0], &[1.0]], &[1.0, 1.0]);
        let warm = qp.solve_warm(&[0, 1]).unwrap();
        assert!((warm.x[0] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn prepared_matches_one_shot_solver() {
        let h = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 2.0]]);
        let g = Matrix::from_rows(&[&[-1.0, 0.0], &[0.0, -1.0], &[1.0, 1.0]]);
        let hvec = Vector::from_slice(&[-0.5, -0.25, 3.0]);
        let f = Vector::from_slice(&[-1.0, -1.0]);

        let oneshot = QuadProg::new(h.clone(), f.clone())
            .unwrap()
            .ineq(g.clone(), hvec.clone())
            .solve()
            .unwrap();
        let prepared = PreparedQp::new(h, g).unwrap();
        let sol = prepared.solve(&f, &hvec, &[]).unwrap();
        assert!(sol.x.approx_eq(&oneshot.x, 1e-12));
        assert_eq!(sol.active, oneshot.active);
        assert!(sol.multipliers.approx_eq(&oneshot.multipliers, 1e-10));
    }

    #[test]
    fn prepared_warm_start_across_rhs_changes() {
        // Track a drifting target under fixed bounds: the active set is
        // stable between consecutive solves, so warm restarts are free.
        let prepared = PreparedQp::new(
            Matrix::identity(2),
            Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]),
        )
        .unwrap();
        let hvec = Vector::from_slice(&[1.0, 1.0]);
        let mut warm: Vec<usize> = Vec::new();
        for k in 0..5 {
            let target = 2.0 + 0.1 * k as f64;
            let f = Vector::from_slice(&[-target, -target]);
            let sol = prepared.solve(&f, &hvec, &warm).unwrap();
            assert!(sol.x.approx_eq(&Vector::from_slice(&[1.0, 1.0]), 1e-10));
            if k > 0 {
                assert_eq!(
                    sol.iterations, 0,
                    "stable active set must be free at step {k}"
                );
            }
            warm = sol.active;
        }
    }

    #[test]
    fn clones_share_the_model_and_solve_bit_identically() {
        let (_, _, qp) = coupled_prepared();
        let f = Vector::from_slice(&[-3.0, 2.0, -1.5]);
        let hvec = Vector::from_slice(&[0.4, 0.8, 0.3, 0.9, 0.9, 2.0]);

        // Populate the original's warm memo before cloning: the clone
        // copies that state but then evolves it independently.
        let seeded = qp.solve(&f, &hvec, &[]).unwrap();
        let clone = qp.clone();
        assert!(qp.shares_model(&clone), "clone must share the Arc'd core");

        let (h2, g2, fresh) = coupled_prepared();
        let _ = (h2, g2);
        assert!(
            !qp.shares_model(&fresh),
            "independent builds must not alias"
        );

        // Same inputs through clone, original and fresh build: one
        // trajectory, bit for bit — sharing is memory-only.
        let a = qp.solve(&f, &hvec, &seeded.active).unwrap();
        let b = clone.solve(&f, &hvec, &seeded.active).unwrap();
        let c = fresh.solve(&f, &hvec, &seeded.active).unwrap();
        assert_bit_identical(&a, &b);
        assert_bit_identical(&a, &c);
    }

    #[test]
    fn derived_problems_do_not_alias_their_parent() {
        let (_, _, qp) = coupled_prepared();
        let kept = qp.retain_constraints(&[true; 6]).unwrap();
        assert!(
            !qp.shares_model(&kept),
            "retain builds a new core even for the identity mask"
        );
    }

    #[test]
    fn prepared_rejects_indefinite_hessian_at_construction() {
        let h = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, -1.0]]);
        let r = PreparedQp::new(h, Matrix::zeros(0, 2));
        assert_eq!(r.unwrap_err(), QpError::NotStrictlyConvex);
    }

    /// Exact bit-pattern equality of two solutions, including the
    /// active-set trajectory.
    fn assert_bit_identical(a: &QpSolution, b: &QpSolution) {
        assert_eq!(a.active, b.active);
        assert_eq!(a.iterations, b.iterations);
        let bits = |v: &Vector| -> Vec<u64> { v.iter().map(|x| x.to_bits()).collect() };
        assert_eq!(bits(&a.x), bits(&b.x));
        assert_eq!(bits(&a.multipliers), bits(&b.multipliers));
    }

    fn coupled_prepared() -> (Matrix, Matrix, PreparedQp) {
        let h = Matrix::from_rows(&[&[4.0, 1.0, 0.2], &[1.0, 2.0, 0.1], &[0.2, 0.1, 3.0]]);
        let g = Matrix::from_rows(&[
            &[1.0, 0.0, 0.0],
            &[0.0, 1.0, 0.0],
            &[0.0, 0.0, 1.0],
            &[-1.0, 0.0, 0.0],
            &[0.0, -1.0, 0.0],
            &[1.0, 1.0, 1.0],
        ]);
        let qp = PreparedQp::new(h.clone(), g.clone()).unwrap();
        (h, g, qp)
    }

    #[test]
    fn retain_constraints_is_bit_identical_to_rebuild() {
        let (h, g, qp) = coupled_prepared();
        let keep = [true, false, true, true, false, true];
        let shrunk = qp.retain_constraints(&keep).unwrap();
        let kept: Vec<usize> = keep
            .iter()
            .enumerate()
            .filter_map(|(i, &k)| k.then_some(i))
            .collect();
        let g_sub = Matrix::from_fn(kept.len(), 3, |r, c| g[(kept[r], c)]);
        let rebuilt = PreparedQp::new(h, g_sub).unwrap();
        assert_eq!(shrunk.num_constraints(), 4);

        let f = Vector::from_slice(&[-3.0, 2.0, -1.5]);
        let hvec = Vector::from_slice(&[0.4, 0.8, 0.3, 0.9]);
        let a = shrunk.solve(&f, &hvec, &[]).unwrap();
        let b = rebuilt.solve(&f, &hvec, &[]).unwrap();
        assert_bit_identical(&a, &b);
        // Warm restarts agree bit for bit too (shared memoized factors
        // start empty on both sides).
        let aw = shrunk.solve(&f, &hvec, &a.active).unwrap();
        let bw = rebuilt.solve(&f, &hvec, &b.active).unwrap();
        assert_bit_identical(&aw, &bw);
    }

    #[test]
    fn append_constraints_is_bit_identical_to_rebuild() {
        let (h, g, qp) = coupled_prepared();
        let extra = Matrix::from_rows(&[&[0.5, -1.0, 0.0], &[0.0, 0.3, -1.0]]);
        let grown = qp.append_constraints(&extra).unwrap();
        let rebuilt = PreparedQp::new(h, g.vstack(&extra)).unwrap();
        assert_eq!(grown.num_constraints(), 8);

        let f = Vector::from_slice(&[-3.0, 2.0, -1.5]);
        let hvec = Vector::from_slice(&[0.4, 10.0, 0.8, 0.2, 0.9, 0.3, -0.1, 0.05]);
        let a = grown.solve(&f, &hvec, &[]).unwrap();
        let b = rebuilt.solve(&f, &hvec, &[]).unwrap();
        assert_bit_identical(&a, &b);
    }

    #[test]
    fn append_onto_unconstrained_problem() {
        let h = Matrix::identity(2);
        let qp = PreparedQp::new(h.clone(), Matrix::zeros(0, 2)).unwrap();
        let extra = Matrix::from_rows(&[&[1.0, 0.0]]);
        let grown = qp.append_constraints(&extra).unwrap();
        let rebuilt = PreparedQp::new(h, extra).unwrap();
        let f = Vector::from_slice(&[-2.0, -0.5]);
        let hvec = Vector::from_slice(&[1.0]);
        let a = grown.solve(&f, &hvec, &[]).unwrap();
        let b = rebuilt.solve(&f, &hvec, &[]).unwrap();
        assert_bit_identical(&a, &b);
        assert!((a.x[0] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn retain_and_append_validate_dimensions() {
        let (_, _, qp) = coupled_prepared();
        assert!(matches!(
            qp.retain_constraints(&[true, false]),
            Err(QpError::DimensionMismatch(_))
        ));
        assert!(matches!(
            qp.append_constraints(&Matrix::zeros(1, 5)),
            Err(QpError::DimensionMismatch(_))
        ));
    }

    #[test]
    fn retain_all_and_retain_none_edge_cases() {
        let (_, g, qp) = coupled_prepared();
        let all = qp.retain_constraints(&vec![true; g.rows()]).unwrap();
        assert_eq!(all.num_constraints(), g.rows());
        let none = qp.retain_constraints(&vec![false; g.rows()]).unwrap();
        assert_eq!(none.num_constraints(), 0);
        let f = Vector::from_slice(&[-1.0, 0.0, 0.5]);
        let sol = none.solve(&f, &Vector::zeros(0), &[]).unwrap();
        assert!(sol.active.is_empty());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn spd(n: usize) -> impl Strategy<Value = Matrix> {
            proptest::collection::vec(-2.0..2.0f64, n * n).prop_map(move |data| {
                let m = Matrix::from_vec(n, n, data);
                &(&m.transpose() * &m) + &Matrix::identity(n)
            })
        }

        proptest! {
            #[test]
            fn kkt_conditions_hold(
                h in spd(3),
                f in proptest::collection::vec(-5.0..5.0f64, 3),
                // Box bounds always feasible: lb ≤ 0 ≤ ub.
                ub in proptest::collection::vec(0.1..4.0f64, 3),
                lb in proptest::collection::vec(-4.0..-0.1f64, 3),
            ) {
                let mut qp = QuadProg::new(h.clone(), Vector::from_slice(&f)).unwrap();
                for i in 0..3 {
                    let mut gu = vec![0.0; 3];
                    gu[i] = 1.0;
                    let mut gl = vec![0.0; 3];
                    gl[i] = -1.0;
                    qp = qp.ineq_rows(&[&gu, &gl], &[ub[i], -lb[i]]);
                }
                let sol = qp.solve().unwrap();
                prop_assert!(qp.kkt_residual(&sol) < 1e-7);
                for i in 0..3 {
                    prop_assert!(sol.x[i] <= ub[i] + 1e-8);
                    prop_assert!(sol.x[i] >= lb[i] - 1e-8);
                }
            }

            #[test]
            fn matches_projection_for_identity_hessian(
                target in proptest::collection::vec(-5.0..5.0f64, 2),
                cap in 0.1..3.0f64,
            ) {
                // min ½‖x − target‖² s.t. x ≤ cap (per coordinate) has the
                // closed-form solution min(target, cap).
                let f = Vector::from_iter(target.iter().map(|v| -v));
                let qp = QuadProg::new(Matrix::identity(2), f)
                    .unwrap()
                    .ineq_rows(&[&[1.0, 0.0], &[0.0, 1.0]], &[cap, cap]);
                let sol = qp.solve().unwrap();
                for (i, &ti) in target.iter().enumerate() {
                    prop_assert!((sol.x[i] - ti.min(cap)).abs() < 1e-8);
                }
            }

            #[test]
            fn warm_start_agrees_with_cold_start(
                h in spd(3),
                f in proptest::collection::vec(-5.0..5.0f64, 3),
                ub in proptest::collection::vec(0.1..4.0f64, 3),
                lb in proptest::collection::vec(-4.0..-0.1f64, 3),
                // An arbitrary (possibly wrong) active-set guess.
                guess in proptest::collection::vec(0..8u64, 3),
            ) {
                let mut qp = QuadProg::new(h.clone(), Vector::from_slice(&f)).unwrap();
                for i in 0..3 {
                    let mut gu = vec![0.0; 3];
                    gu[i] = 1.0;
                    let mut gl = vec![0.0; 3];
                    gl[i] = -1.0;
                    qp = qp.ineq_rows(&[&gu, &gl], &[ub[i], -lb[i]]);
                }
                let cold = qp.solve().unwrap();

                // Both an arbitrary guess and the true active set must
                // reproduce the unique minimizer of the strictly convex QP.
                let guess: Vec<usize> = guess.iter().map(|&v| v as usize).collect();
                for warm_set in [guess.as_slice(), cold.active.as_slice()] {
                    let warm = qp.solve_warm(warm_set).unwrap();
                    prop_assert!(warm.x.approx_eq(&cold.x, 1e-9));
                    prop_assert!(qp.kkt_residual(&warm) < 1e-7);
                    let mut wa = warm.active.clone();
                    let mut ca = cold.active.clone();
                    wa.sort_unstable();
                    ca.sort_unstable();
                    prop_assert_eq!(wa, ca);
                }
                let exact = qp.solve_warm(&cold.active).unwrap();
                prop_assert_eq!(exact.iterations, 0);
            }
        }
    }
}
