//! Dual active-set quadratic-program solver (Goldfarb–Idnani).

use eucon_math::{Cholesky, MathError, Matrix, Vector};

use crate::QpError;

/// Absolute tolerance for constraint violation and multiplier tests,
/// applied relative to the problem scale.
const TOL: f64 = 1e-10;

/// Solution of a [`QuadProg`] problem.
#[derive(Debug, Clone)]
pub struct QpSolution {
    /// The minimizer.
    pub x: Vector,
    /// Lagrange multipliers, one per inequality row (zero for inactive
    /// constraints).  All multipliers are non-negative at the optimum.
    pub multipliers: Vector,
    /// Indices of the constraints active at the solution.
    pub active: Vec<usize>,
    /// Number of active-set changes the solver performed.
    pub iterations: usize,
}

impl QpSolution {
    /// Evaluates `½xᵀHx + fᵀx` at the solution for the given objective.
    pub fn objective(&self, h: &Matrix, f: &Vector) -> f64 {
        0.5 * self.x.dot(&h.mul_vec(&self.x)) + f.dot(&self.x)
    }
}

/// A strictly convex quadratic program
/// `min ½xᵀHx + fᵀx` subject to `Gx ≤ h`.
///
/// Solved by the dual active-set method of Goldfarb & Idnani (1983) — the
/// algorithm family used by production QP codes (`quadprog`, MATLAB's
/// medium-scale `lsqlin`).  The dual method starts from the unconstrained
/// minimum `x = −H⁻¹f` and adds violated constraints one at a time, so it
/// never needs a feasible starting point and certifies infeasibility.
///
/// Problems in this repository are small (≤ ~50 variables), so each step
/// re-solves its subproblems densely instead of maintaining incremental
/// factorizations; correctness is identical, and the cost is negligible.
///
/// # Example
///
/// ```
/// use eucon_math::{Matrix, Vector};
/// use eucon_qp::QuadProg;
///
/// # fn main() -> Result<(), eucon_qp::QpError> {
/// // min ½‖x‖² s.t. x0 ≥ 1 (written as −x0 ≤ −1)
/// let qp = QuadProg::new(Matrix::identity(2), Vector::zeros(2))?
///     .ineq_rows(&[&[-1.0, 0.0]], &[-1.0]);
/// let sol = qp.solve()?;
/// assert!((sol.x[0] - 1.0).abs() < 1e-9);
/// assert!(sol.x[1].abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct QuadProg {
    h: Matrix,
    f: Vector,
    g: Matrix,
    hvec: Vector,
}

impl QuadProg {
    /// Creates a QP with the given objective and no constraints.
    ///
    /// # Errors
    ///
    /// Returns [`QpError::DimensionMismatch`] when `f.len() != h.rows()`,
    /// and [`QpError::NotStrictlyConvex`] when `h` is not square or not
    /// positive definite.
    pub fn new(h: Matrix, f: Vector) -> Result<Self, QpError> {
        if !h.is_square() {
            return Err(QpError::NotStrictlyConvex);
        }
        if f.len() != h.rows() {
            return Err(QpError::DimensionMismatch(format!(
                "objective dimension {} does not match hessian order {}",
                f.len(),
                h.rows()
            )));
        }
        let n = h.rows();
        Ok(QuadProg { h, f, g: Matrix::zeros(0, n), hvec: Vector::zeros(0) })
    }

    /// Appends inequality constraints `G x ≤ h` given as a matrix.
    ///
    /// # Panics
    ///
    /// Panics if `g.cols()` does not match the number of variables or if
    /// `g.rows() != h.len()`.
    pub fn ineq(mut self, g: Matrix, h: Vector) -> Self {
        assert_eq!(g.cols(), self.h.rows(), "constraint row width must match variable count");
        assert_eq!(g.rows(), h.len(), "constraint matrix and rhs must have equal rows");
        self.g = if self.g.rows() == 0 { g } else { self.g.vstack(&g) };
        self.hvec = self.hvec.concat(&h);
        self
    }

    /// Appends inequality constraints given as slices of rows.
    ///
    /// # Panics
    ///
    /// Panics on mismatched dimensions (see [`QuadProg::ineq`]).
    pub fn ineq_rows(self, rows: &[&[f64]], rhs: &[f64]) -> Self {
        if rows.is_empty() {
            return self;
        }
        self.ineq(Matrix::from_rows(rows), Vector::from_slice(rhs))
    }

    /// Number of decision variables.
    pub fn num_vars(&self) -> usize {
        self.h.rows()
    }

    /// Number of inequality constraints.
    pub fn num_constraints(&self) -> usize {
        self.g.rows()
    }

    /// Solves the program.
    ///
    /// # Errors
    ///
    /// * [`QpError::NotStrictlyConvex`] — `H` has a non-positive eigenvalue.
    /// * [`QpError::Infeasible`] — no point satisfies all constraints.
    /// * [`QpError::IterationLimit`] — active-set cycling (should not occur
    ///   for well-scaled inputs).
    pub fn solve(&self) -> Result<QpSolution, QpError> {
        let n = self.num_vars();
        let m = self.num_constraints();
        if n == 0 {
            return Ok(QpSolution {
                x: Vector::zeros(0),
                multipliers: Vector::zeros(m),
                active: Vec::new(),
                iterations: 0,
            });
        }
        let chol = Cholesky::decompose(&self.h).map_err(|e| match e {
            MathError::NotPositiveDefinite => QpError::NotStrictlyConvex,
            other => QpError::Math(other),
        })?;

        // Unconstrained minimum.
        let mut x = chol.solve(&(-&self.f))?;
        let mut active: Vec<usize> = Vec::new();
        let mut u: Vec<f64> = Vec::new();

        let scale = self
            .g
            .max_abs()
            .max(self.hvec.max_abs())
            .max(self.h.max_abs())
            .max(1.0);
        let tol = TOL * scale;
        let max_iter = 50 * (m + 1);
        let mut iterations = 0;

        'outer: loop {
            // Most violated inactive constraint (g_p·x − h_p > tol).
            let mut p = None;
            let mut worst = tol;
            for i in 0..m {
                if active.contains(&i) {
                    continue;
                }
                let viol = dot_row(&self.g, i, &x) - self.hvec[i];
                if viol > worst {
                    worst = viol;
                    p = Some(i);
                }
            }
            let Some(p) = p else {
                let mut multipliers = Vector::zeros(m);
                for (idx, &c) in active.iter().enumerate() {
                    multipliers[c] = u[idx];
                }
                return Ok(QpSolution { x, multipliers, active, iterations });
            };

            // Normal of constraint p in `≥` orientation: n_p = −g_pᵀ.
            let np = Vector::from_iter(self.g.row(p).iter().map(|v| -v));
            let mut u_p = 0.0;

            loop {
                iterations += 1;
                if iterations > max_iter {
                    return Err(QpError::IterationLimit { iterations });
                }

                // z: primal step direction; r: dual step for active set.
                let hinv_np = chol.solve(&np)?;
                let (z, r) = if active.is_empty() {
                    (hinv_np.clone(), Vec::new())
                } else {
                    // Columns n_j = −g_jᵀ for j in the active set.
                    let q = active.len();
                    let mut hinv_n = Vec::with_capacity(q);
                    for &j in &active {
                        let nj = Vector::from_iter(self.g.row(j).iter().map(|v| -v));
                        hinv_n.push(chol.solve(&nj)?);
                    }
                    // M = Nᵀ H⁻¹ N, rhs = Nᵀ H⁻¹ n_p.
                    let mut mmat = Matrix::zeros(q, q);
                    let mut rhs = Vector::zeros(q);
                    for (a, &ja) in active.iter().enumerate() {
                        let na = Vector::from_iter(self.g.row(ja).iter().map(|v| -v));
                        for b in 0..q {
                            mmat[(a, b)] = na.dot(&hinv_n[b]);
                        }
                        rhs[a] = na.dot(&hinv_np);
                    }
                    let r = mmat.solve(&rhs).map_err(QpError::Math)?;
                    let mut z = hinv_np.clone();
                    for (b, hn) in hinv_n.iter().enumerate() {
                        z = &z - &hn.scale(r[b]);
                    }
                    (z, r.into_vec())
                };

                // Maximum step preserving non-negative multipliers.
                let mut t1 = f64::INFINITY;
                let mut drop_idx = None;
                for (j, &rj) in r.iter().enumerate() {
                    if rj > tol {
                        let ratio = u[j] / rj;
                        if ratio < t1 {
                            t1 = ratio;
                            drop_idx = Some(j);
                        }
                    }
                }

                let ztnp = z.dot(&np);
                if ztnp <= tol {
                    // Constraint p cannot be satisfied by a primal move.
                    if t1.is_infinite() {
                        return Err(QpError::Infeasible);
                    }
                    // Dual-only step: relax a blocking constraint.
                    for (j, rj) in r.iter().enumerate() {
                        u[j] -= t1 * rj;
                    }
                    u_p += t1;
                    let j = drop_idx.expect("finite t1 implies a blocking index");
                    active.remove(j);
                    u.remove(j);
                    continue;
                }

                // Full step length: drive the violation of p to zero.
                let s_p = dot_row(&self.g, p, &x) - self.hvec[p];
                let t2 = s_p / ztnp;
                let t = t1.min(t2);

                x = &x + &z.scale(t);
                for (j, rj) in r.iter().enumerate() {
                    u[j] -= t * rj;
                }
                u_p += t;

                if t2 <= t1 {
                    active.push(p);
                    u.push(u_p);
                    continue 'outer;
                }
                let j = drop_idx.expect("t1 < t2 implies a blocking index");
                active.remove(j);
                u.remove(j);
            }
        }
    }

    /// Maximum KKT residual of a candidate solution: stationarity,
    /// feasibility and complementary slackness.  Useful for verification.
    pub fn kkt_residual(&self, sol: &QpSolution) -> f64 {
        // Stationarity: Hx + f + Gᵀλ = 0.
        let mut grad = &self.h.mul_vec(&sol.x) + &self.f;
        for i in 0..self.num_constraints() {
            let lam = sol.multipliers[i];
            for (j, gij) in self.g.row(i).iter().enumerate() {
                grad[j] += lam * gij;
            }
        }
        let mut worst = grad.max_abs();
        for i in 0..self.num_constraints() {
            let slack = self.hvec[i] - dot_row(&self.g, i, &sol.x);
            // Primal feasibility.
            worst = worst.max(-slack);
            // Dual feasibility.
            worst = worst.max(-sol.multipliers[i]);
            // Complementary slackness.
            worst = worst.max((sol.multipliers[i] * slack).abs());
        }
        worst
    }
}

fn dot_row(g: &Matrix, i: usize, x: &Vector) -> f64 {
    g.row(i).iter().zip(x.iter()).map(|(a, b)| a * b).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_qp() -> QuadProg {
        QuadProg::new(Matrix::identity(2), Vector::zeros(2)).unwrap()
    }

    #[test]
    fn unconstrained_minimum() {
        // min ½‖x‖² − [1,2]·x → x = [1,2].
        let qp = QuadProg::new(Matrix::identity(2), Vector::from_slice(&[-1.0, -2.0])).unwrap();
        let sol = qp.solve().unwrap();
        assert!(sol.x.approx_eq(&Vector::from_slice(&[1.0, 2.0]), 1e-10));
        assert!(sol.active.is_empty());
    }

    #[test]
    fn single_active_constraint() {
        // min ½‖x‖² s.t. x0 ≥ 1.
        let qp = unit_qp().ineq_rows(&[&[-1.0, 0.0]], &[-1.0]);
        let sol = qp.solve().unwrap();
        assert!(sol.x.approx_eq(&Vector::from_slice(&[1.0, 0.0]), 1e-10));
        assert_eq!(sol.active, vec![0]);
        assert!((sol.multipliers[0] - 1.0).abs() < 1e-9);
        assert!(qp.kkt_residual(&sol) < 1e-9);
    }

    #[test]
    fn inactive_constraints_are_ignored() {
        // Same objective; constraint x0 ≤ 5 is never binding.
        let qp = unit_qp().ineq_rows(&[&[1.0, 0.0]], &[5.0]);
        let sol = qp.solve().unwrap();
        assert!(sol.x.max_abs() < 1e-10);
        assert!(sol.active.is_empty());
        assert_eq!(sol.multipliers[0], 0.0);
    }

    #[test]
    fn two_constraints_corner() {
        // min ½‖x − [2,2]‖² s.t. x0 ≤ 1, x1 ≤ 1 → corner [1,1].
        let qp = QuadProg::new(Matrix::identity(2), Vector::from_slice(&[-2.0, -2.0]))
            .unwrap()
            .ineq_rows(&[&[1.0, 0.0], &[0.0, 1.0]], &[1.0, 1.0]);
        let sol = qp.solve().unwrap();
        assert!(sol.x.approx_eq(&Vector::from_slice(&[1.0, 1.0]), 1e-10));
        assert_eq!(sol.active.len(), 2);
        assert!(qp.kkt_residual(&sol) < 1e-9);
    }

    #[test]
    fn constraint_drop_is_exercised() {
        // The unconstrained optimum violates both constraints, but only one
        // is active at the optimum, forcing an add-then-drop sequence for
        // some processing orders.
        // min ½‖x − [3,0]‖² s.t. x0 + x1 ≤ 1, x0 − x1 ≤ 1.
        let qp = QuadProg::new(Matrix::identity(2), Vector::from_slice(&[-3.0, 0.0]))
            .unwrap()
            .ineq_rows(&[&[1.0, 1.0], &[1.0, -1.0]], &[1.0, 1.0]);
        let sol = qp.solve().unwrap();
        // Optimum is x = [1, 0] with both constraints active.
        assert!(sol.x.approx_eq(&Vector::from_slice(&[1.0, 0.0]), 1e-9));
        assert!(qp.kkt_residual(&sol) < 1e-9);
    }

    #[test]
    fn detects_infeasible() {
        // x0 ≤ 0 and x0 ≥ 1 cannot both hold.
        let qp = unit_qp().ineq_rows(&[&[1.0, 0.0], &[-1.0, 0.0]], &[0.0, -1.0]);
        assert_eq!(qp.solve().unwrap_err(), QpError::Infeasible);
    }

    #[test]
    fn rejects_indefinite_hessian() {
        let h = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, -1.0]]);
        let qp = QuadProg::new(h, Vector::zeros(2)).unwrap();
        assert_eq!(qp.solve().unwrap_err(), QpError::NotStrictlyConvex);
    }

    #[test]
    fn rejects_dimension_mismatch() {
        assert!(matches!(
            QuadProg::new(Matrix::identity(2), Vector::zeros(3)),
            Err(QpError::DimensionMismatch(_))
        ));
    }

    #[test]
    fn empty_problem() {
        let qp = QuadProg::new(Matrix::zeros(0, 0), Vector::zeros(0)).unwrap();
        let sol = qp.solve().unwrap();
        assert!(sol.x.is_empty());
    }

    #[test]
    fn redundant_duplicate_constraints() {
        // The same constraint twice must not confuse the active set.
        let qp = QuadProg::new(Matrix::identity(1), Vector::from_slice(&[-2.0]))
            .unwrap()
            .ineq_rows(&[&[1.0], &[1.0]], &[1.0, 1.0]);
        let sol = qp.solve().unwrap();
        assert!((sol.x[0] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn equality_like_tight_box() {
        // 0.5 ≤ x0 ≤ 0.5 pins the variable.
        let qp = QuadProg::new(Matrix::identity(1), Vector::zeros(1))
            .unwrap()
            .ineq_rows(&[&[1.0], &[-1.0]], &[0.5, -0.5]);
        let sol = qp.solve().unwrap();
        assert!((sol.x[0] - 0.5).abs() < 1e-10);
    }

    #[test]
    fn coupled_hessian() {
        // Non-diagonal H exercises the Cholesky path.
        let h = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 2.0]]);
        let qp = QuadProg::new(h.clone(), Vector::from_slice(&[-1.0, -1.0]))
            .unwrap()
            .ineq_rows(&[&[-1.0, 0.0]], &[-0.5]);
        let sol = qp.solve().unwrap();
        assert!(qp.kkt_residual(&sol) < 1e-9);
        assert!(sol.x[0] >= 0.5 - 1e-10);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn spd(n: usize) -> impl Strategy<Value = Matrix> {
            proptest::collection::vec(-2.0..2.0f64, n * n).prop_map(move |data| {
                let m = Matrix::from_vec(n, n, data);
                &(&m.transpose() * &m) + &Matrix::identity(n)
            })
        }

        proptest! {
            #[test]
            fn kkt_conditions_hold(
                h in spd(3),
                f in proptest::collection::vec(-5.0..5.0f64, 3),
                // Box bounds always feasible: lb ≤ 0 ≤ ub.
                ub in proptest::collection::vec(0.1..4.0f64, 3),
                lb in proptest::collection::vec(-4.0..-0.1f64, 3),
            ) {
                let mut qp = QuadProg::new(h.clone(), Vector::from_slice(&f)).unwrap();
                for i in 0..3 {
                    let mut gu = vec![0.0; 3];
                    gu[i] = 1.0;
                    let mut gl = vec![0.0; 3];
                    gl[i] = -1.0;
                    qp = qp.ineq_rows(&[&gu, &gl], &[ub[i], -lb[i]]);
                }
                let sol = qp.solve().unwrap();
                prop_assert!(qp.kkt_residual(&sol) < 1e-7);
                for i in 0..3 {
                    prop_assert!(sol.x[i] <= ub[i] + 1e-8);
                    prop_assert!(sol.x[i] >= lb[i] - 1e-8);
                }
            }

            #[test]
            fn matches_projection_for_identity_hessian(
                target in proptest::collection::vec(-5.0..5.0f64, 2),
                cap in 0.1..3.0f64,
            ) {
                // min ½‖x − target‖² s.t. x ≤ cap (per coordinate) has the
                // closed-form solution min(target, cap).
                let f = Vector::from_iter(target.iter().map(|v| -v));
                let qp = QuadProg::new(Matrix::identity(2), f)
                    .unwrap()
                    .ineq_rows(&[&[1.0, 0.0], &[0.0, 1.0]], &[cap, cap]);
                let sol = qp.solve().unwrap();
                for (i, &ti) in target.iter().enumerate() {
                    prop_assert!((sol.x[i] - ti.min(cap)).abs() < 1e-8);
                }
            }
        }
    }
}
