//! `lsqlin`-style constrained least-squares front end.

use std::sync::Arc;

use eucon_math::{Matrix, Vector};

use crate::solver::{factorize, solve_with_chol};
use crate::{PreparedQp, QpError, QpSolution};

/// Constrained linear least-squares problem, shaped like MATLAB's `lsqlin`:
///
/// ```text
/// min ‖C·x − d‖₂²   subject to   G·x ≤ h,   lb ≤ x ≤ ub
/// ```
///
/// This is exactly the problem the EUCON model-predictive controller solves
/// once per sampling period (paper §6.1).  The builder collects inequality
/// rows and box bounds, converts everything to a strictly convex QP
/// (`H = CᵀC + εI`, `f = −Cᵀd`) and solves it with the dual active-set
/// [`QuadProg`] solver.
///
/// A tiny Tikhonov term `εI` (configurable via
/// [`regularization`](ConstrainedLsq::regularization)) keeps the QP strictly
/// convex when `C` is rank-deficient; the default `ε = 0` trusts the caller.
///
/// # Example
///
/// ```
/// use eucon_math::{Matrix, Vector};
/// use eucon_qp::ConstrainedLsq;
///
/// # fn main() -> Result<(), eucon_qp::QpError> {
/// // Closest point to [2, 2] inside the unit box.
/// let sol = ConstrainedLsq::new(Matrix::identity(2), Vector::from_slice(&[2.0, 2.0]))
///     .bounds(&[0.0, 0.0], &[1.0, 1.0])
///     .solve()?;
/// assert!(sol.x.approx_eq(&Vector::from_slice(&[1.0, 1.0]), 1e-9));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ConstrainedLsq {
    c: Matrix,
    d: Vector,
    g: Matrix,
    h: Vector,
    regularization: f64,
}

/// Solution of a [`ConstrainedLsq`] problem.
#[derive(Debug, Clone)]
pub struct LsqSolution {
    /// The minimizer.
    pub x: Vector,
    /// Residual norm `‖C·x − d‖₂` at the solution.
    pub residual: f64,
    /// Number of active-set changes performed by the QP solver.
    pub iterations: usize,
    /// Indices of active constraints, in the order rows were added
    /// (inequality rows first, then upper-bound rows, then lower-bound rows).
    pub active: Vec<usize>,
}

impl ConstrainedLsq {
    /// Creates an unconstrained problem `min ‖C·x − d‖²`.
    ///
    /// # Panics
    ///
    /// Panics if `d.len() != c.rows()`.
    pub fn new(c: Matrix, d: Vector) -> Self {
        assert_eq!(
            d.len(),
            c.rows(),
            "rhs length must equal the number of rows of C"
        );
        let n = c.cols();
        ConstrainedLsq {
            c,
            d,
            g: Matrix::zeros(0, n),
            h: Vector::zeros(0),
            regularization: 0.0,
        }
    }

    /// Appends inequality constraints `G·x ≤ h`.
    ///
    /// # Panics
    ///
    /// Panics if `g.cols()` differs from the variable count or
    /// `g.rows() != h.len()`.
    pub fn ineq(mut self, g: Matrix, h: Vector) -> Self {
        assert_eq!(
            g.cols(),
            self.c.cols(),
            "constraint width must match variable count"
        );
        assert_eq!(
            g.rows(),
            h.len(),
            "constraint matrix and rhs must have equal rows"
        );
        self.g = if self.g.rows() == 0 {
            g
        } else {
            self.g.vstack(&g)
        };
        self.h = self.h.concat(&h);
        self
    }

    /// Appends inequality constraints given as slices of rows.
    pub fn ineq_rows(self, rows: &[&[f64]], rhs: &[f64]) -> Self {
        if rows.is_empty() {
            return self;
        }
        self.ineq(Matrix::from_rows(rows), Vector::from_slice(rhs))
    }

    /// Adds box bounds `lb ≤ x ≤ ub`.
    ///
    /// Use `f64::NEG_INFINITY` / `f64::INFINITY` entries for unbounded
    /// variables; infinite bounds generate no constraint rows.
    ///
    /// # Panics
    ///
    /// Panics if the slices do not have one entry per variable.
    pub fn bounds(mut self, lb: &[f64], ub: &[f64]) -> Self {
        let n = self.c.cols();
        assert_eq!(lb.len(), n, "lower bound length must equal variable count");
        assert_eq!(ub.len(), n, "upper bound length must equal variable count");
        let mut rows: Vec<Vec<f64>> = Vec::new();
        let mut rhs: Vec<f64> = Vec::new();
        for (i, &b) in ub.iter().enumerate() {
            if b.is_finite() {
                let mut row = vec![0.0; n];
                row[i] = 1.0;
                rows.push(row);
                rhs.push(b);
            }
        }
        for (i, &b) in lb.iter().enumerate() {
            if b.is_finite() {
                let mut row = vec![0.0; n];
                row[i] = -1.0;
                rows.push(row);
                rhs.push(-b);
            }
        }
        if !rows.is_empty() {
            let row_refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
            self = self.ineq(Matrix::from_rows(&row_refs), Vector::from_slice(&rhs));
        }
        self
    }

    /// Sets the Tikhonov regularization weight `ε` added to the Gauss
    /// normal matrix (`H = CᵀC + εI`).
    ///
    /// Keeps the QP strictly convex when `C` is rank-deficient.  `ε` should
    /// be tiny relative to `‖CᵀC‖` (e.g. `1e-9`).
    pub fn regularization(mut self, eps: f64) -> Self {
        self.regularization = eps;
        self
    }

    /// Number of decision variables.
    pub fn num_vars(&self) -> usize {
        self.c.cols()
    }

    /// Solves the problem.
    ///
    /// # Errors
    ///
    /// * [`QpError::NotStrictlyConvex`] — `CᵀC + εI` is not positive
    ///   definite (rank-deficient `C` with `ε = 0`).
    /// * [`QpError::Infeasible`] — the constraints admit no solution.
    /// * Any error of the underlying [`QuadProg::solve`].
    pub fn solve(&self) -> Result<LsqSolution, QpError> {
        let n = self.num_vars();
        if n == 0 {
            return Ok(LsqSolution {
                x: Vector::zeros(0),
                residual: self.d.norm(),
                iterations: 0,
                active: Vec::new(),
            });
        }
        let ct = self.c.transpose();
        let hess = gauss_normal_matrix(&ct, &self.c, self.regularization);
        let f = -&ct.mul_vec(&self.d);
        let chol = factorize(&hess)?;
        let base_scale = self.g.max_abs().max(hess.max_abs()).max(1.0);
        let QpSolution {
            x,
            active,
            iterations,
            ..
        } = solve_with_chol(&chol, &f, &self.g, &self.h, base_scale, None, &[], None)?;
        let residual = (&self.c.mul_vec(&x) - &self.d).norm();
        Ok(LsqSolution {
            x,
            residual,
            iterations,
            active,
        })
    }
}

/// Indices selected by a boolean mask, in order.
fn mask_indices(mask: &[bool]) -> Vec<usize> {
    mask.iter()
        .enumerate()
        .filter_map(|(i, &k)| k.then_some(i))
        .collect()
}

/// `CᵀC + εI`, the Gauss normal matrix of the least-squares objective.
fn gauss_normal_matrix(ct: &Matrix, c: &Matrix, regularization: f64) -> Matrix {
    let mut hess = ct * c;
    if regularization > 0.0 {
        for i in 0..hess.rows() {
            hess[(i, i)] += regularization;
        }
    }
    hess
}

/// A constrained least-squares problem with fixed `C` and `G`, prepared
/// for repeated solves with varying targets `d` and constraint slacks `h`.
///
/// This is the shape of the EUCON controller's per-period problem: the
/// objective matrix `C` and constraint matrix `G` derive from the task
/// model and never change between sampling periods, while `d` (tracking
/// error) and `h` (rate/utilization slacks) change every period.
/// Construction builds `H = CᵀC + εI`, factorizes it once, and precomputes
/// the per-constraint back-solves ([`PreparedQp`]); each
/// [`solve_with`](PreparedLsq::solve_with) then costs two triangular
/// back-substitutions plus active-set bookkeeping, and can warm-start from
/// the previous period's active set.
///
/// # Example
///
/// ```
/// use eucon_math::{Matrix, Vector};
/// use eucon_qp::PreparedLsq;
///
/// # fn main() -> Result<(), eucon_qp::QpError> {
/// // Repeatedly project a moving target onto x0 + x1 ≤ 1.
/// let prepared = PreparedLsq::new(
///     Matrix::identity(2),
///     Matrix::from_rows(&[&[1.0, 1.0]]),
///     0.0,
/// )?;
/// let h = Vector::from_slice(&[1.0]);
/// let mut warm = Vec::new();
/// for k in 0..3 {
///     let d = Vector::from_slice(&[1.0 + k as f64, 1.0]);
///     let sol = prepared.solve_with(&d, &h, &warm)?;
///     assert!(sol.x[0] + sol.x[1] <= 1.0 + 1e-9);
///     warm = sol.active;
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PreparedLsq {
    /// Objective matrix and its transpose, shared across clones like the
    /// QP core: fanning a homogeneous model out to a fleet copies two
    /// `Arc`s, not two matrices.
    c: Arc<Matrix>,
    ct: Arc<Matrix>,
    qp: PreparedQp,
}

impl PreparedLsq {
    /// Prepares `min ‖C·x − d‖²` s.t. `G·x ≤ h` for repeated solves,
    /// factorizing `H = CᵀC + εI` once.
    ///
    /// # Errors
    ///
    /// * [`QpError::NotStrictlyConvex`] — `CᵀC + εI` is not positive
    ///   definite (rank-deficient `C` with `ε = 0`).
    /// * [`QpError::DimensionMismatch`] — `g.cols() != c.cols()`.
    pub fn new(c: Matrix, g: Matrix, regularization: f64) -> Result<Self, QpError> {
        let ct = c.transpose();
        let hess = gauss_normal_matrix(&ct, &c, regularization);
        let qp = PreparedQp::new(hess, g)?;
        Ok(PreparedLsq {
            c: Arc::new(c),
            ct: Arc::new(ct),
            qp,
        })
    }

    /// Number of decision variables.
    pub fn num_vars(&self) -> usize {
        self.c.cols()
    }

    /// Number of inequality constraints.
    pub fn num_constraints(&self) -> usize {
        self.qp.num_constraints()
    }

    /// Lower bandwidth of the normal-equation Hessian `CᵀC + εI`
    /// detected at preparation time (see
    /// [`PreparedQp::hessian_bandwidth`]).
    pub fn hessian_bandwidth(&self) -> usize {
        self.qp.hessian_bandwidth()
    }

    /// The prepared quadratic program (fixed `H = CᵀC + εI` and `G`).
    pub fn qp(&self) -> &PreparedQp {
        &self.qp
    }

    /// Whether `self` and `other` share one immutable model (`C`, `Cᵀ`
    /// and the prepared QP core) — true exactly for clones of a common
    /// ancestor (see [`PreparedQp::shares_model`]).
    pub fn shares_model(&self, other: &PreparedLsq) -> bool {
        Arc::ptr_eq(&self.c, &other.c) && self.qp.shares_model(&other.qp)
    }

    /// Incremental membership shrink: retains the objective rows,
    /// variables (columns) and constraint rows selected by the three
    /// masks, producing the prepared problem `min ‖C'x' − d'‖²` s.t.
    /// `G'x' ≤ h'` over the retained block.
    ///
    /// The Gauss normal matrix of the retained block is *extracted* from
    /// the existing `H` instead of recomputed: the blocked matrix product
    /// behind `CᵀC` skips exactly-zero terms, so rows that are zero in
    /// every retained column never contributed to the retained entries in
    /// the first place — extraction is bit-identical to recomputing
    /// `C'ᵀC' + εI` from scratch (and the regularization rides along on
    /// the diagonal).  The Cholesky factorization and constraint cache are
    /// rebuilt through the same deterministic path as
    /// [`PreparedLsq::new`], so the result is pinned bit-identical to a
    /// full rebuild on the extracted matrices; the saving is the `O(rows ·
    /// k²)` Gram product and the model-matrix assembly.
    ///
    /// This is the shape of a task departure in the EUCON controller:
    /// dropping a task removes its move-block columns from `C`, its
    /// rate-penalty rows (zero everywhere else — the contract below), and
    /// its rate-bound constraint rows.
    ///
    /// # Errors
    ///
    /// * [`QpError::DimensionMismatch`] — a mask length does not match the
    ///   corresponding dimension, or a *dropped* objective row has a
    ///   nonzero entry in a *retained* column (the extracted `H` would be
    ///   wrong).
    /// * Any error of [`PreparedLsq::new`] on the retained block.
    pub fn retain(
        &self,
        keep_rows: &[bool],
        keep_vars: &[bool],
        keep_constraints: &[bool],
    ) -> Result<PreparedLsq, QpError> {
        if keep_rows.len() != self.c.rows()
            || keep_vars.len() != self.c.cols()
            || keep_constraints.len() != self.qp.num_constraints()
        {
            return Err(QpError::DimensionMismatch(format!(
                "retain masks ({}, {}, {}) do not match prepared dimensions ({}, {}, {})",
                keep_rows.len(),
                keep_vars.len(),
                keep_constraints.len(),
                self.c.rows(),
                self.c.cols(),
                self.qp.num_constraints()
            )));
        }
        for (r, &kr) in keep_rows.iter().enumerate() {
            if kr {
                continue;
            }
            for (j, &kv) in keep_vars.iter().enumerate() {
                if kv && self.c[(r, j)] != 0.0 {
                    return Err(QpError::DimensionMismatch(format!(
                        "dropped objective row {r} has a nonzero entry in retained column {j}; \
                         the Gauss normal matrix of the retained block cannot be extracted"
                    )));
                }
            }
        }
        let rows: Vec<usize> = mask_indices(keep_rows);
        let vars: Vec<usize> = mask_indices(keep_vars);
        let cons: Vec<usize> = mask_indices(keep_constraints);
        let c = Matrix::from_fn(rows.len(), vars.len(), |r, j| self.c[(rows[r], vars[j])]);
        let ct = c.transpose();
        let full_h = self.qp.hessian();
        let hess = Matrix::from_fn(vars.len(), vars.len(), |a, b| full_h[(vars[a], vars[b])]);
        let full_g = self.qp.constraints();
        let g = Matrix::from_fn(cons.len(), vars.len(), |r, j| full_g[(cons[r], vars[j])]);
        let qp = PreparedQp::new(hess, g)?;
        Ok(PreparedLsq {
            c: Arc::new(c),
            ct: Arc::new(ct),
            qp,
        })
    }

    /// Solves for a new target `d` and constraint rhs `h`, optionally
    /// warm-starting from a previous active set (see
    /// [`PreparedQp::solve`]).
    ///
    /// # Errors
    ///
    /// Same conditions as [`ConstrainedLsq::solve`], minus
    /// [`QpError::NotStrictlyConvex`] which was ruled out at construction.
    ///
    /// # Panics
    ///
    /// Panics if `d.len() != c.rows()` or `h.len()` differs from the
    /// prepared constraint count.
    pub fn solve_with(
        &self,
        d: &Vector,
        h: &Vector,
        warm: &[usize],
    ) -> Result<LsqSolution, QpError> {
        assert_eq!(
            d.len(),
            self.c.rows(),
            "rhs length must equal the number of rows of C"
        );
        let mut f = self.ct.mul_vec(d);
        for v in f.as_mut_slice() {
            *v *= -1.0;
        }
        let QpSolution {
            x,
            active,
            iterations,
            ..
        } = self.qp.solve(&f, h, warm)?;
        // ‖C·x − d‖ accumulated row by row; same per-row dots and the same
        // left-to-right sum of squares as the allocating
        // `(&self.c.mul_vec(&x) - d).norm()`, without the two temporaries.
        let mut acc = 0.0;
        for i in 0..self.c.rows() {
            let diff = eucon_math::kernel::dot(self.c.row(i), x.as_slice()) - d[i];
            acc += diff * diff;
        }
        let residual = acc.sqrt();
        Ok(LsqSolution {
            x,
            residual,
            iterations,
            active,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconstrained_matches_qr_least_squares() {
        let c = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]]);
        let d = Vector::from_slice(&[1.0, 2.0, 2.8]);
        let sol = ConstrainedLsq::new(c.clone(), d.clone()).solve().unwrap();
        let oracle = c.least_squares(&d).unwrap();
        assert!(sol.x.approx_eq(&oracle, 1e-9));
        assert!(sol.active.is_empty());
    }

    #[test]
    fn bounds_clip_the_solution() {
        let sol = ConstrainedLsq::new(Matrix::identity(2), Vector::from_slice(&[5.0, -5.0]))
            .bounds(&[-1.0, -1.0], &[1.0, 1.0])
            .solve()
            .unwrap();
        assert!(sol.x.approx_eq(&Vector::from_slice(&[1.0, -1.0]), 1e-9));
        assert_eq!(sol.active.len(), 2);
    }

    #[test]
    fn infinite_bounds_generate_no_rows() {
        let problem = ConstrainedLsq::new(Matrix::identity(2), Vector::zeros(2))
            .bounds(&[f64::NEG_INFINITY, 0.0], &[f64::INFINITY, 1.0]);
        // Only x1's two finite bounds should have been added.
        let sol = problem.solve().unwrap();
        assert!(sol.x.max_abs() < 1e-12);
    }

    #[test]
    fn mixed_rows_and_bounds() {
        // Target [2, 2]; x0 + x1 ≤ 1 and x ≥ 0 → symmetric optimum [.5, .5].
        let sol = ConstrainedLsq::new(Matrix::identity(2), Vector::from_slice(&[2.0, 2.0]))
            .ineq_rows(&[&[1.0, 1.0]], &[1.0])
            .bounds(&[0.0, 0.0], &[10.0, 10.0])
            .solve()
            .unwrap();
        assert!(sol.x.approx_eq(&Vector::from_slice(&[0.5, 0.5]), 1e-9));
        assert!((sol.residual - (2.0f64 * 1.5 * 1.5).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn rank_deficient_needs_regularization() {
        // C has rank 1: fails without regularization, succeeds with it.
        let c = Matrix::from_rows(&[&[1.0, 1.0]]);
        let d = Vector::from_slice(&[2.0]);
        let bare = ConstrainedLsq::new(c.clone(), d.clone()).solve();
        assert_eq!(bare.unwrap_err(), QpError::NotStrictlyConvex);

        let sol = ConstrainedLsq::new(c, d)
            .regularization(1e-9)
            .solve()
            .unwrap();
        // Minimum-norm-ish solution: x0 ≈ x1 ≈ 1.
        assert!((sol.x[0] - 1.0).abs() < 1e-4);
        assert!((sol.x[1] - 1.0).abs() < 1e-4);
    }

    #[test]
    fn infeasible_box_detected() {
        let r = ConstrainedLsq::new(Matrix::identity(1), Vector::zeros(1))
            .ineq_rows(&[&[1.0], &[-1.0]], &[-2.0, 1.0]) // x ≤ −2 and x ≥ −1
            .solve();
        assert_eq!(r.unwrap_err(), QpError::Infeasible);
    }

    #[test]
    #[should_panic(expected = "rhs length")]
    fn dimension_validation_panics() {
        let _ = ConstrainedLsq::new(Matrix::identity(2), Vector::zeros(3));
    }

    #[test]
    fn residual_reported_correctly() {
        // Overdetermined inconsistent system keeps a positive residual.
        let c = Matrix::from_rows(&[&[1.0], &[1.0]]);
        let d = Vector::from_slice(&[0.0, 2.0]);
        let sol = ConstrainedLsq::new(c, d).solve().unwrap();
        assert!((sol.x[0] - 1.0).abs() < 1e-9);
        assert!((sol.residual - std::f64::consts::SQRT_2).abs() < 1e-9);
    }

    #[test]
    fn prepared_matches_one_shot_front_end() {
        let c = Matrix::from_rows(&[&[2.0, 0.5], &[0.0, 1.0], &[1.0, 1.0]]);
        let g = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[-1.0, 0.0], &[0.0, -1.0]]);
        let h = Vector::from_slice(&[1.0, 1.0, 1.0, 1.0]);
        let prepared = PreparedLsq::new(c.clone(), g.clone(), 0.0).unwrap();
        for d in [[3.0, -2.0, 0.5], [0.0, 0.0, 0.0], [-5.0, 5.0, 1.0]] {
            let dv = Vector::from_slice(&d);
            let oneshot = ConstrainedLsq::new(c.clone(), dv.clone())
                .ineq(g.clone(), h.clone())
                .solve()
                .unwrap();
            let sol = prepared.solve_with(&dv, &h, &[]).unwrap();
            assert!(sol.x.approx_eq(&oneshot.x, 1e-10));
            assert!((sol.residual - oneshot.residual).abs() < 1e-10);
        }
    }

    #[test]
    fn prepared_warm_start_reaches_same_solution() {
        let prepared = PreparedLsq::new(
            Matrix::identity(2),
            Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]),
            0.0,
        )
        .unwrap();
        let h = Vector::from_slice(&[1.0, 1.0]);
        let d = Vector::from_slice(&[2.0, 2.0]);
        let cold = prepared.solve_with(&d, &h, &[]).unwrap();
        let warm = prepared.solve_with(&d, &h, &cold.active).unwrap();
        assert!(warm.x.approx_eq(&cold.x, 1e-12));
        assert_eq!(warm.iterations, 0);
    }

    /// MPC-shaped problem: dense tracking rows over every variable, then
    /// one rate-penalty row per variable that is zero everywhere else —
    /// exactly the structure `retain`'s dropped-row contract requires when
    /// a task departs.
    fn churn_shaped_prepared() -> (Matrix, Matrix, PreparedLsq) {
        let c = Matrix::from_rows(&[
            &[1.0, 0.4, -0.3],
            &[0.2, 1.1, 0.6],
            &[0.5, 0.0, 0.0],
            &[0.0, 0.5, 0.0],
            &[0.0, 0.0, 0.5],
        ]);
        let g = Matrix::from_rows(&[
            &[1.0, 0.0, 0.0],
            &[0.0, 1.0, 0.0],
            &[0.0, 0.0, 1.0],
            &[-1.0, 0.0, 0.0],
            &[0.0, -1.0, 0.0],
            &[0.0, 0.0, -1.0],
        ]);
        let p = PreparedLsq::new(c.clone(), g.clone(), 1e-9).unwrap();
        (c, g, p)
    }

    #[test]
    fn retain_is_bit_identical_to_full_rebuild() {
        let (c, g, p) = churn_shaped_prepared();
        // Drop variable 1: its penalty row (3) and its two bound rows (1, 4).
        let keep_rows = [true, true, true, false, true];
        let keep_vars = [true, false, true];
        let keep_cons = [true, false, true, true, false, true];
        let shrunk = p.retain(&keep_rows, &keep_vars, &keep_cons).unwrap();

        let rows = [0usize, 1, 2, 4];
        let vars = [0usize, 2];
        let cons = [0usize, 2, 3, 5];
        let c_sub = Matrix::from_fn(rows.len(), vars.len(), |r, j| c[(rows[r], vars[j])]);
        let g_sub = Matrix::from_fn(cons.len(), vars.len(), |r, j| g[(cons[r], vars[j])]);
        let rebuilt = PreparedLsq::new(c_sub, g_sub, 1e-9).unwrap();

        assert_eq!(shrunk.num_vars(), 2);
        assert_eq!(shrunk.num_constraints(), 4);
        let d = Vector::from_slice(&[1.5, -0.7, 0.2, -0.4]);
        let h = Vector::from_slice(&[0.2, 0.3, 0.9, 0.9]);
        let a = shrunk.solve_with(&d, &h, &[]).unwrap();
        let b = rebuilt.solve_with(&d, &h, &[]).unwrap();
        assert_eq!(a.active, b.active);
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.residual.to_bits(), b.residual.to_bits());
        let bits = |v: &Vector| -> Vec<u64> { v.iter().map(|x| x.to_bits()).collect() };
        assert_eq!(bits(&a.x), bits(&b.x));
        // Warm restart from the migrated active set agrees too.
        let aw = shrunk.solve_with(&d, &h, &a.active).unwrap();
        let bw = rebuilt.solve_with(&d, &h, &b.active).unwrap();
        assert_eq!(bits(&aw.x), bits(&bw.x));
        assert_eq!(aw.iterations, bw.iterations);
    }

    #[test]
    fn retain_rejects_dense_dropped_row() {
        let (_, _, p) = churn_shaped_prepared();
        // Dropping a dense tracking row while keeping its columns would make
        // the extracted Gauss normal matrix wrong; must be refused.
        let r = p.retain(
            &[false, true, true, true, true],
            &[true, true, true],
            &[true; 6],
        );
        assert!(matches!(r, Err(QpError::DimensionMismatch(_))));
    }

    #[test]
    fn retain_validates_mask_lengths() {
        let (_, _, p) = churn_shaped_prepared();
        let r = p.retain(&[true; 4], &[true; 3], &[true; 6]);
        assert!(matches!(r, Err(QpError::DimensionMismatch(_))));
        let r = p.retain(&[true; 5], &[true; 2], &[true; 6]);
        assert!(matches!(r, Err(QpError::DimensionMismatch(_))));
        let r = p.retain(&[true; 5], &[true; 3], &[true; 5]);
        assert!(matches!(r, Err(QpError::DimensionMismatch(_))));
    }

    #[test]
    fn retain_identity_masks_reproduce_the_problem() {
        let (_, _, p) = churn_shaped_prepared();
        let same = p.retain(&[true; 5], &[true; 3], &[true; 6]).unwrap();
        let d = Vector::from_slice(&[1.0, 2.0, 0.0, 0.0, 0.0]);
        let h = Vector::from_slice(&[0.5; 6]);
        let a = p.solve_with(&d, &h, &[]).unwrap();
        let b = same.solve_with(&d, &h, &[]).unwrap();
        assert_eq!(a.x[0].to_bits(), b.x[0].to_bits());
        assert_eq!(a.x[1].to_bits(), b.x[1].to_bits());
        assert_eq!(a.x[2].to_bits(), b.x[2].to_bits());
        assert_eq!(a.active, b.active);
    }

    #[test]
    fn prepared_detects_rank_deficiency_at_construction() {
        let c = Matrix::from_rows(&[&[1.0, 1.0]]);
        let r = PreparedLsq::new(c.clone(), Matrix::zeros(0, 2), 0.0);
        assert_eq!(r.unwrap_err(), QpError::NotStrictlyConvex);
        assert!(PreparedLsq::new(c, Matrix::zeros(0, 2), 1e-9).is_ok());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn solution_never_violates_box(
                d in proptest::collection::vec(-10.0..10.0f64, 3),
                half_width in 0.1..2.0f64,
            ) {
                let sol = ConstrainedLsq::new(Matrix::identity(3), Vector::from_slice(&d))
                    .bounds(&[-half_width; 3], &[half_width; 3])
                    .solve()
                    .unwrap();
                for (i, &di) in d.iter().enumerate() {
                    prop_assert!(sol.x[i].abs() <= half_width + 1e-8);
                    // Identity objective → solution is the clamp.
                    prop_assert!((sol.x[i] - di.clamp(-half_width, half_width)).abs() < 1e-8);
                }
            }

            #[test]
            fn objective_not_worse_than_feasible_candidates(
                d in proptest::collection::vec(-3.0..3.0f64, 2),
                candidate in proptest::collection::vec(-1.0..1.0f64, 2),
            ) {
                // Any feasible candidate must score ≥ the reported optimum.
                let c = Matrix::from_rows(&[&[2.0, 0.5], &[0.0, 1.0]]);
                let dv = Vector::from_slice(&d);
                let sol = ConstrainedLsq::new(c.clone(), dv.clone())
                    .bounds(&[-1.0, -1.0], &[1.0, 1.0])
                    .solve()
                    .unwrap();
                let cand = Vector::from_slice(&candidate);
                let cand_resid = (&c.mul_vec(&cand) - &dv).norm();
                prop_assert!(sol.residual <= cand_resid + 1e-7);
            }
        }
    }
}
