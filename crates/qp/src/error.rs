//! Error type for the QP solvers.

use std::error::Error;
use std::fmt;

use eucon_math::MathError;

/// Errors produced by the constrained optimization solvers.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum QpError {
    /// The constraint set is empty: no `x` satisfies every inequality.
    Infeasible,
    /// The Hessian `H` (or `CᵀC` for least squares) is not positive
    /// definite, so the problem is not strictly convex.
    NotStrictlyConvex,
    /// Inputs had inconsistent dimensions.
    DimensionMismatch(String),
    /// The solver exceeded its iteration budget without converging.
    IterationLimit {
        /// Number of active-set changes attempted.
        iterations: usize,
    },
    /// An underlying linear-algebra operation failed.
    Math(MathError),
}

impl fmt::Display for QpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QpError::Infeasible => write!(f, "constraints are infeasible"),
            QpError::NotStrictlyConvex => {
                write!(
                    f,
                    "objective is not strictly convex (hessian not positive definite)"
                )
            }
            QpError::DimensionMismatch(msg) => write!(f, "dimension mismatch: {msg}"),
            QpError::IterationLimit { iterations } => {
                write!(
                    f,
                    "active-set iteration limit reached after {iterations} steps"
                )
            }
            QpError::Math(e) => write!(f, "linear algebra failure: {e}"),
        }
    }
}

impl Error for QpError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            QpError::Math(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<MathError> for QpError {
    fn from(e: MathError) -> Self {
        QpError::Math(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert_eq!(
            QpError::Infeasible.to_string(),
            "constraints are infeasible"
        );
        assert!(QpError::IterationLimit { iterations: 5 }
            .to_string()
            .contains("5"));
        assert!(QpError::Math(MathError::Singular)
            .to_string()
            .contains("singular"));
    }

    #[test]
    fn source_chains_math_errors() {
        let err = QpError::Math(MathError::Singular);
        assert!(Error::source(&err).is_some());
        assert!(Error::source(&QpError::Infeasible).is_none());
    }

    #[test]
    fn from_math_error() {
        let err: QpError = MathError::Singular.into();
        assert_eq!(err, QpError::Math(MathError::Singular));
    }
}
