//! Admission-control regression tests, promoted from the
//! `admission_control` example so CI enforces what the example's
//! narrative claims: under a catastrophic overload (execution times at
//! 25× the estimates) rate adaptation alone cannot fit the workload, so
//! the supervisor suspends tasks; when the overload clears, every task
//! is re-admitted and normal utilization regulation resumes.

use eucon_control::MpcConfig;
use eucon_core::admission::AdaptiveLoop;
use eucon_core::{metrics, AdmissionEvent, AdmissionPolicy};
use eucon_sim::{EtfProfile, ExecModel, SimConfig};
use eucon_tasks::workloads;

/// The example's disaster-recovery scenario: etf 25 for 80 periods
/// (sensor fusion saturating), then relief at 0.5.
fn disaster_recovery() -> AdaptiveLoop {
    let profile = EtfProfile::steps(&[(0.0, 25.0), (80_000.0, 0.5)]);
    AdaptiveLoop::new(
        workloads::simple(),
        MpcConfig::simple(),
        AdmissionPolicy::default(),
        SimConfig {
            exec_model: ExecModel::Constant,
            etf: profile,
            seed: 0,
            release_guard: Default::default(),
            processor_speeds: None,
        },
    )
    .expect("adaptive loop builds")
}

#[test]
fn overload_forces_suspensions_and_relief_readmits_everyone() {
    let mut al = disaster_recovery();
    al.run(220);

    assert!(
        al.events()
            .iter()
            .any(|e| matches!(e, AdmissionEvent::Suspended { .. })),
        "the 25x overload must force suspensions: {:?}",
        al.events()
    );
    assert!(
        al.events()
            .iter()
            .any(|e| matches!(e, AdmissionEvent::Readmitted { .. })),
        "relief must trigger re-admissions: {:?}",
        al.events()
    );
    assert!(
        al.suspended_tasks().is_empty(),
        "relief must bring every task back: {:?}",
        al.suspended_tasks()
    );

    // Normal regulation resumes after relief: P1's tail utilization
    // returns to its RMS set point.
    let u1 = al.trace().utilization_series(0);
    let relief_tail = metrics::window(&u1, 180, 220);
    assert!(
        (relief_tail.mean - 0.828).abs() < 0.05,
        "post-relief P1 mean {:.3} should track 0.828",
        relief_tail.mean
    );
}

#[test]
fn suspensions_and_readmissions_pair_up_in_period_order() {
    let mut al = disaster_recovery();
    al.run(220);

    // Every suspension precedes its matching re-admission, and the event
    // log is ordered by period.
    let mut last_period = 0usize;
    let mut outstanding = 0i64;
    for e in al.events() {
        match *e {
            AdmissionEvent::Suspended { period, .. } => {
                assert!(period >= last_period);
                last_period = period;
                outstanding += 1;
            }
            AdmissionEvent::Readmitted { period, .. } => {
                assert!(period >= last_period);
                last_period = period;
                outstanding -= 1;
                assert!(outstanding >= 0, "re-admission without a suspension");
            }
            _ => {}
        }
    }
    assert_eq!(outstanding, 0, "every suspension is eventually undone");
}

#[test]
fn healthy_load_never_touches_admission() {
    let mut al = AdaptiveLoop::new(
        workloads::simple(),
        MpcConfig::simple(),
        AdmissionPolicy::default(),
        SimConfig::constant_etf(1.0),
    )
    .expect("adaptive loop builds");
    al.run(40);
    assert!(al.suspended_tasks().is_empty());
    assert!(al.events().is_empty(), "events: {:?}", al.events());
}
