//! Fleet determinism: per-loop results are bit-identical across worker
//! thread counts.
//!
//! The fleet runner's contract is that parallelism is invisible — a
//! loop's trace digest is a pure function of its spec, never of which
//! worker ran it or in what order loops were stolen.  This suite runs a
//! heterogeneous fleet (both paper workloads, stochastic execution
//! times, supervised loops under a crash + lossy-actuation plan) at
//! 1, 2 and 8 threads and requires identical digest vectors, in both
//! debug and release profiles (CI runs both).

use eucon_control::MpcConfig;
use eucon_core::{ControllerSpec, FleetConfig, FleetLoopSpec, FleetRunner};
use eucon_sim::{ExecModel, FaultPlan, SimConfig};
use eucon_tasks::workloads;

const PERIODS: usize = 20;

/// A fleet that exercises every per-loop code path whose determinism
/// matters: warm-started QP solves, seeded stochastic execution times,
/// fault injection and supervisor degradation.
fn fleet_specs() -> Vec<FleetLoopSpec> {
    let mut specs = Vec::new();
    for i in 0..24u64 {
        let spec = match i % 4 {
            0 => FleetLoopSpec::new(workloads::simple()).sim_config(SimConfig::constant_etf(0.5)),
            1 => FleetLoopSpec::new(workloads::medium())
                .sim_config(
                    SimConfig::constant_etf(1.0)
                        .exec_model(ExecModel::Uniform { half_width: 0.2 })
                        .seed(i),
                )
                .controller(ControllerSpec::Eucon(MpcConfig::medium())),
            2 => FleetLoopSpec::new(workloads::simple())
                .sim_config(SimConfig::constant_etf(0.5))
                .controller(ControllerSpec::SupervisedEucon {
                    mpc: MpcConfig::simple(),
                    supervisor: Default::default(),
                })
                .faults(
                    FaultPlan::none()
                        .crash(1, 10, 18)
                        .actuation_loss(0.3)
                        .seed(7),
                ),
            _ => FleetLoopSpec::new(workloads::medium())
                .sim_config(SimConfig::constant_etf(0.9).seed(i))
                .controller(ControllerSpec::Pid { kp: 0.5, ki: 0.05 }),
        };
        specs.push(spec);
    }
    specs
}

fn run_at(threads: usize, batch: usize) -> eucon_core::FleetReport {
    let mut cfg = FleetConfig::new(PERIODS).threads(threads);
    if batch > 0 {
        cfg = cfg.telemetry_batch(batch);
    }
    let mut fleet = FleetRunner::new(cfg);
    for spec in fleet_specs() {
        fleet.push(spec);
    }
    fleet.run().expect("fleet runs")
}

#[test]
fn digests_identical_across_thread_counts() {
    let baseline = run_at(1, 0);
    assert_eq!(baseline.loops, 24);
    assert_eq!(baseline.total_periods, 24 * PERIODS as u64);
    for threads in [2usize, 8] {
        let parallel = run_at(threads, 0);
        assert_eq!(
            baseline.digests, parallel.digests,
            "digest vector must not depend on thread count ({threads} threads)"
        );
        assert_eq!(baseline.engine_events, parallel.engine_events);
        assert_eq!(baseline.control_errors, parallel.control_errors);
    }
}

#[test]
fn batched_telemetry_does_not_perturb_digests() {
    // Batch = 7 never divides 20 periods: every loop ends mid-batch and
    // delivers exactly one partial flush — without touching the plant.
    let unbatched = run_at(2, 0);
    let batched = run_at(8, 7);
    assert_eq!(unbatched.digests, batched.digests);
    assert_eq!(batched.partial_flushes, 24);
    assert_eq!(unbatched.partial_flushes, 0);
}

#[test]
fn identical_specs_produce_identical_digests() {
    let spec = FleetLoopSpec::new(workloads::medium())
        .sim_config(
            SimConfig::constant_etf(1.0)
                .exec_model(ExecModel::Uniform { half_width: 0.2 })
                .seed(1),
        )
        .controller(ControllerSpec::Eucon(MpcConfig::medium()));
    let report = FleetRunner::replicated(spec, 16, FleetConfig::new(PERIODS).threads(8))
        .run()
        .expect("fleet runs");
    assert!(
        report.digests.iter().all(|&d| d == report.digests[0]),
        "replicated specs must agree: {:?}",
        report.digests
    );
}
