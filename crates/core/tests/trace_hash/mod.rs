//! Shared golden-trace machinery for the equivalence test suites.
//!
//! One FNV-1a hash over the bit patterns of everything a closed-loop run
//! observes, the four pinned closed-loop scenarios, and assemblers for
//! both loop flavours — so `engine_equivalence` (single-process engine)
//! and `transport_equivalence` (distributed loop over ideal lanes) pin
//! the *same* golden constants.

// Each test target compiles this module separately and uses a subset.
#![allow(dead_code)]

use eucon_control::MpcConfig;
use eucon_core::{ChurnPlan, ClosedLoop, ControllerSpec, DistributedLoop, RunResult};
use eucon_math::Vector;
use eucon_sim::{ExecModel, FaultPlan, SimConfig};
use eucon_tasks::{workloads, TaskSet};

// ---- FNV-1a 64 over the bit patterns of the trace ----

pub struct Fnv(pub u64);

impl Fnv {
    pub fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    pub fn byte(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }
    pub fn u64(&mut self, x: u64) {
        for b in x.to_le_bytes() {
            self.byte(b);
        }
    }
    pub fn f64(&mut self, x: f64) {
        self.u64(x.to_bits());
    }
    pub fn vector(&mut self, v: &Vector) {
        self.u64(v.len() as u64);
        for &x in v.iter() {
            self.f64(x);
        }
    }
}

/// Hashes everything a closed-loop run observes: each step's time, true
/// utilizations, sensed/received report, applied rates and annotations,
/// plus the final deadline statistics.
pub fn hash_result(result: &RunResult) -> u64 {
    let mut h = Fnv::new();
    for step in result.trace.steps() {
        h.f64(step.time);
        h.vector(&step.utilization);
        match &step.received {
            None => h.byte(0),
            Some(v) => {
                h.byte(1);
                h.vector(v);
            }
        }
        h.vector(&step.rates);
        let ann = &step.annotations;
        h.u64(ann.crashed.len() as u64);
        for &p in &ann.crashed {
            h.u64(p as u64);
        }
        h.u64(ann.actuation_dropped.len() as u64);
        for &p in &ann.actuation_dropped {
            h.u64(p as u64);
        }
        h.byte(ann.degraded as u8);
        h.byte(ann.control_error as u8);
    }
    h.u64(result.deadlines.met);
    h.u64(result.deadlines.missed);
    h.u64(result.control_errors as u64);
    h.0
}

// ---- the pinned closed-loop scenarios ----

/// The four closed-loop golden scenarios: the paper's two workloads,
/// fault-free and under the scripted crash + lossy-actuation plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    SimpleFaultFree,
    MediumFaultFree,
    SimpleFaulted,
    MediumFaulted,
}

/// Periods every golden scenario runs for.
pub const GOLDEN_PERIODS: usize = 40;

/// Golden hashes captured from the reference engine.
pub const GOLDEN_SIMPLE_FAULT_FREE: u64 = 0xb286_0648_874c_a00f;
pub const GOLDEN_MEDIUM_FAULT_FREE: u64 = 0xae12_aab1_5672_e1a9;
pub const GOLDEN_SIMPLE_FAULTED: u64 = 0x82e1_1b45_8111_02a0;
pub const GOLDEN_MEDIUM_FAULTED: u64 = 0x0920_d34b_7e38_0a57;

impl Scenario {
    pub const ALL: [Scenario; 4] = [
        Scenario::SimpleFaultFree,
        Scenario::MediumFaultFree,
        Scenario::SimpleFaulted,
        Scenario::MediumFaulted,
    ];

    /// The pinned hash of this scenario's trace.
    pub fn golden(self) -> u64 {
        match self {
            Scenario::SimpleFaultFree => GOLDEN_SIMPLE_FAULT_FREE,
            Scenario::MediumFaultFree => GOLDEN_MEDIUM_FAULT_FREE,
            Scenario::SimpleFaulted => GOLDEN_SIMPLE_FAULTED,
            Scenario::MediumFaulted => GOLDEN_MEDIUM_FAULTED,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Scenario::SimpleFaultFree => "simple_fault_free",
            Scenario::MediumFaultFree => "medium_fault_free",
            Scenario::SimpleFaulted => "simple_faulted",
            Scenario::MediumFaulted => "medium_faulted",
        }
    }

    fn workload(self) -> TaskSet {
        match self {
            Scenario::SimpleFaultFree | Scenario::SimpleFaulted => workloads::simple(),
            Scenario::MediumFaultFree | Scenario::MediumFaulted => workloads::medium(),
        }
    }

    fn sim_config(self) -> SimConfig {
        match self {
            Scenario::SimpleFaultFree | Scenario::SimpleFaulted => SimConfig::constant_etf(0.5),
            Scenario::MediumFaultFree | Scenario::MediumFaulted => SimConfig::constant_etf(1.0)
                .exec_model(ExecModel::Uniform { half_width: 0.2 })
                .seed(1),
        }
    }

    fn controller(self) -> ControllerSpec {
        let mpc = match self {
            Scenario::SimpleFaultFree | Scenario::SimpleFaulted => MpcConfig::simple(),
            Scenario::MediumFaultFree | Scenario::MediumFaulted => MpcConfig::medium(),
        };
        match self {
            Scenario::SimpleFaultFree | Scenario::MediumFaultFree => ControllerSpec::Eucon(mpc),
            Scenario::SimpleFaulted | Scenario::MediumFaulted => ControllerSpec::SupervisedEucon {
                mpc,
                supervisor: Default::default(),
            },
        }
    }

    fn faults(self) -> FaultPlan {
        match self {
            Scenario::SimpleFaultFree | Scenario::MediumFaultFree => FaultPlan::none(),
            // Crash + lossy actuation lanes: exercises NaN sensors,
            // supervisor degradation, per-processor rate freezing and
            // recovery reschedules.
            Scenario::SimpleFaulted | Scenario::MediumFaulted => FaultPlan::none()
                .crash(1, 10, 18)
                .actuation_loss(0.3)
                .seed(7),
        }
    }

    /// Runs the scenario through the single-process loop.
    pub fn run_single(self) -> RunResult {
        ClosedLoop::builder(self.workload())
            .sim_config(self.sim_config())
            .controller(self.controller())
            .faults(self.faults())
            .build()
            .expect("closed loop")
            .run(GOLDEN_PERIODS)
    }

    /// Runs the scenario through the single-process loop with an
    /// explicit **empty** churn plan: the builder must treat it exactly
    /// like no plan at all, so the trace stays bit-identical to
    /// [`Scenario::run_single`] and the golden hashes hold.
    pub fn run_single_zero_churn(self) -> RunResult {
        ClosedLoop::builder(self.workload())
            .sim_config(self.sim_config())
            .controller(self.controller())
            .faults(self.faults())
            .churn(ChurnPlan::none())
            .build()
            .expect("closed loop")
            .run(GOLDEN_PERIODS)
    }

    /// [`Scenario::run_distributed_channel`] with an explicit empty
    /// churn plan — same bit-identity contract as
    /// [`Scenario::run_single_zero_churn`].
    pub fn run_distributed_zero_churn(self) -> RunResult {
        DistributedLoop::builder(self.workload())
            .sim_config(self.sim_config())
            .controller(self.controller())
            .faults(self.faults())
            .churn(ChurnPlan::none())
            .channel(4)
            .build()
            .expect("distributed loop")
            .run(GOLDEN_PERIODS)
    }

    /// Runs the scenario through the distributed loop over ideal
    /// in-process channel lanes — must be bit-identical to
    /// [`Scenario::run_single`].
    pub fn run_distributed_channel(self) -> RunResult {
        DistributedLoop::builder(self.workload())
            .sim_config(self.sim_config())
            .controller(self.controller())
            .faults(self.faults())
            .channel(4)
            .build()
            .expect("distributed loop")
            .run(GOLDEN_PERIODS)
    }

    /// Runs the scenario through the distributed loop over real
    /// loopback-TCP lanes driven by the many-lane poll engine — must be
    /// bit-identical to [`Scenario::run_single`].  The generous receive
    /// window keeps loaded machines deterministic: TCP loses nothing,
    /// so every report lands within the window and the trace carries no
    /// timing artifacts.
    pub fn run_distributed_poll(self) -> RunResult {
        DistributedLoop::builder(self.workload())
            .sim_config(self.sim_config())
            .controller(self.controller())
            .faults(self.faults())
            .tcp_poll(Default::default())
            .recv_timeout(std::time::Duration::from_millis(200))
            .build()
            .expect("distributed poll loop")
            .run(GOLDEN_PERIODS)
    }
}
