//! Multi-tenant isolation: one tenant's dying lanes never perturb
//! another tenant's trace.
//!
//! Two tenants share one [`ControlService`]: tenant A is the pinned
//! `simple_fault_free` golden scenario over ideal poll-engine TCP
//! lanes; tenant B has every lane partitioned from period 5 onward, so
//! it marches through quarantine to eviction while A runs.  The pin:
//! A's trace hash equals [`GOLDEN_SIMPLE_FAULT_FREE`] — the *same*
//! constant the single-process engine pins — even though B's lanes were
//! rotting in the same service loop the whole time, and B's collapse
//! produces exactly the typed event sequence the eviction policy
//! promises.
//!
//! [`ControlService`]: eucon_core::ControlService
//! [`GOLDEN_SIMPLE_FAULT_FREE`]: trace_hash::GOLDEN_SIMPLE_FAULT_FREE

mod trace_hash;

use std::time::Duration;

use eucon_control::MpcConfig;
use eucon_core::{
    ControlService, ControllerSpec, EvictionPolicy, TenantEvent, TenantHealth, TenantSpec,
};
use eucon_sim::{FaultPlan, SimConfig};
use eucon_tasks::workloads;
use trace_hash::{hash_result, GOLDEN_PERIODS, GOLDEN_SIMPLE_FAULT_FREE};

/// Tenant A: exactly the `simple_fault_free` golden scenario, over
/// ideal poll-engine TCP lanes with a window generous enough for
/// deterministic delivery on loaded machines.
fn golden_tenant() -> TenantSpec {
    TenantSpec::new("golden", workloads::simple())
        .sim_config(SimConfig::constant_etf(0.5))
        .controller(ControllerSpec::Eucon(MpcConfig::simple()))
        .recv_timeout(Duration::from_millis(200))
}

#[test]
fn a_dying_tenant_never_perturbs_its_neighbour_trace() {
    let mut svc = ControlService::new(EvictionPolicy {
        quarantine_after: 3,
        evict_after: 8,
    });
    let a = svc.attach(golden_tenant()).expect("tenant A attaches");
    // Tenant B: both SIMPLE lanes partitioned from period 5 for the
    // rest of the run — total silence, straight into eviction.
    let b = svc
        .attach(
            TenantSpec::new("doomed", workloads::simple())
                .sim_config(SimConfig::constant_etf(0.5))
                .controller(ControllerSpec::Eucon(MpcConfig::simple()))
                .recv_timeout(Duration::from_millis(10))
                .faults(
                    FaultPlan::none()
                        .partition(0, 5, 1000)
                        .partition(1, 5, 1000),
                ),
        )
        .expect("tenant B attaches");

    svc.run(GOLDEN_PERIODS);

    // B collapsed on schedule: quarantined, then evicted, then frozen.
    assert_eq!(svc.health(b), Some(TenantHealth::Evicted));
    let b_transitions: Vec<&TenantEvent> = svc
        .events()
        .iter()
        .filter(|e| {
            matches!(
                e,
                TenantEvent::Quarantined { tenant, .. }
                | TenantEvent::Evicted { tenant, .. }
                | TenantEvent::Recovered { tenant, .. } if *tenant == b
            )
        })
        .collect();
    assert!(
        matches!(
            b_transitions.as_slice(),
            [TenantEvent::Quarantined { .. }, TenantEvent::Evicted { .. },]
        ),
        "doomed tenant's transition sequence: {b_transitions:?}"
    );

    // A never wavered — and its trace is the golden trace, bit for bit.
    assert_eq!(svc.health(a), Some(TenantHealth::Healthy));
    let report = svc.detach(a).expect("tenant A detaches");
    assert_eq!(report.periods, GOLDEN_PERIODS);
    assert_eq!(report.transport.decode_errors, 0);
    assert_eq!(report.transport.dropped, 0);
    assert_eq!(
        hash_result(&report.result),
        GOLDEN_SIMPLE_FAULT_FREE,
        "tenant A's trace drifted from the single-process golden hash"
    );

    // The golden tenant never appears in a degradation event.
    assert!(
        !svc.events().iter().any(|e| matches!(
            e,
            TenantEvent::Quarantined { tenant, .. }
            | TenantEvent::Evicted { tenant, .. } if *tenant == a
        )),
        "tenant A was degraded: {:?}",
        svc.events()
    );
}

/// `ATTACH` with an unknown workload answers with a *typed* first
/// token — `ERR unknown-workload ...` — so scripted clients can branch
/// on the refusal without scraping a generic parse-failure string.
#[test]
fn attach_with_unknown_workload_returns_typed_error() {
    let handle = eucon_core::ControlService::spawn(EvictionPolicy::default())
        .expect("service daemon spawns");
    let mut client =
        eucon_core::ServiceClient::connect(handle.addr()).expect("admin client connects");

    let resp = client
        .request("ATTACH ghost haskell 0.5")
        .expect("daemon answers");
    assert!(!resp.ok, "bogus workload must be refused: {resp:?}");
    assert!(
        resp.status.starts_with("unknown-workload"),
        "refusal must lead with the machine-readable token: {:?}",
        resp.status
    );
    assert!(
        resp.status.contains("haskell") && resp.status.contains("simple|medium"),
        "refusal names the offender and the accepted set: {:?}",
        resp.status
    );

    // Ordinary malformed ATTACHes still read as generic config errors,
    // not the typed token.
    let resp = client.request("ATTACH lonely").expect("daemon answers");
    assert!(!resp.ok);
    assert!(
        !resp.status.starts_with("unknown-workload"),
        "missing-argument errors must stay generic: {:?}",
        resp.status
    );

    handle.shutdown();
}
