//! Transport-equivalence tests: the distributed loop is the single-process
//! loop, observationally.
//!
//! Two pins:
//!
//! 1. **Golden hashes** — [`DistributedLoop`] over ideal in-process channel
//!    lanes must reproduce the *same* FNV-1a trace hashes the
//!    single-process engine pins in `engine_equivalence` (shared via
//!    `trace_hash/`): splitting the loop into controller and processor
//!    nodes exchanging binary frames may not perturb a single bit.
//!
//! 2. **Draw-for-draw lane model** — the transport-level [`DelayLoss`]
//!    middleware over a channel must agree with the in-loop [`LaneState`]
//!    reference semantics on every period: same seed → same loss draws,
//!    same delivered values, bit-for-bit, for arbitrary delay/loss
//!    configurations (property-tested).
//!
//! [`DistributedLoop`]: eucon_core::DistributedLoop

mod trace_hash;

use eucon_core::net::{channel_pair, DelayLoss, Frame, Transport};
use eucon_core::{LaneModel, LaneState};
use eucon_math::Vector;
use proptest::prelude::*;
use trace_hash::{hash_result, Scenario};

#[test]
fn distributed_golden_simple_fault_free() {
    let s = Scenario::SimpleFaultFree;
    assert_eq!(hash_result(&s.run_distributed_channel()), s.golden());
}

#[test]
fn distributed_golden_medium_fault_free() {
    let s = Scenario::MediumFaultFree;
    assert_eq!(hash_result(&s.run_distributed_channel()), s.golden());
}

#[test]
fn distributed_golden_simple_faulted() {
    let s = Scenario::SimpleFaulted;
    assert_eq!(hash_result(&s.run_distributed_channel()), s.golden());
}

#[test]
fn distributed_golden_medium_faulted() {
    let s = Scenario::MediumFaulted;
    assert_eq!(hash_result(&s.run_distributed_channel()), s.golden());
}

#[test]
fn poll_engine_golden_simple_fault_free() {
    let s = Scenario::SimpleFaultFree;
    assert_eq!(hash_result(&s.run_distributed_poll()), s.golden());
}

#[test]
fn poll_engine_golden_medium_fault_free() {
    let s = Scenario::MediumFaultFree;
    assert_eq!(hash_result(&s.run_distributed_poll()), s.golden());
}

#[test]
fn poll_engine_golden_simple_faulted() {
    let s = Scenario::SimpleFaulted;
    assert_eq!(hash_result(&s.run_distributed_poll()), s.golden());
}

#[test]
fn poll_engine_golden_medium_faulted() {
    let s = Scenario::MediumFaulted;
    assert_eq!(hash_result(&s.run_distributed_poll()), s.golden());
}

/// What a controller holding the last delivery sees after this period's
/// frames (if any) are drained from a lane — the distributed runtime's
/// stale-reuse semantics on a single scalar lane.
fn drain_into_hold<T: Transport>(rx: &mut T, hold: &mut f64) {
    while let Ok(Some(frame)) = rx.try_recv() {
        if let Frame::UtilizationReport { values, .. } = frame {
            *hold = values[0];
        }
    }
}

proptest! {
    #[test]
    fn delay_loss_middleware_matches_lane_state_draw_for_draw(
        delay in 0usize..4,
        p in 0.0f64..0.9,
        seed in 0u64..1_000_000,
        samples in proptest::collection::vec(0.0f64..1.0, 48),
    ) {
        let mut lane = LaneState::new(LaneModel {
            report_delay: delay,
            loss_probability: p,
            seed,
        });
        let (tx, mut rx) = channel_pair(64);
        let mut middleware = DelayLoss::new(tx, delay, p, seed);
        // Before anything crosses either lane, the controller sees zeros.
        let mut hold = 0.0f64;
        for (k, &x) in samples.iter().enumerate() {
            let fresh = Vector::from_slice(&[x]);
            // Reference: `None` means the lane delivered `fresh` unchanged.
            let reference = lane.transmit(&fresh).map_or(x, |v| v[0]);
            middleware
                .send(Frame::UtilizationReport {
                    seq: k as u64 + 1,
                    period: k as u64,
                    values: vec![x],
                })
                .unwrap();
            middleware.tick();
            drain_into_hold(&mut rx, &mut hold);
            prop_assert_eq!(
                hold.to_bits(),
                reference.to_bits(),
                "period {}: middleware delivered {} but LaneState delivered {}",
                k,
                hold,
                reference
            );
        }
        // Both models drew from the same seed the same number of times:
        // loss counts agree exactly.
        prop_assert_eq!(middleware.stats().sent, samples.len() as u64);
    }
}
