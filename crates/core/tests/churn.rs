//! Runtime-membership (churn) integration tests for the closed loop.
//!
//! Three contracts pinned here:
//!
//! 1. **Golden-trace safety** — a churn-free build (explicit empty
//!    [`ChurnPlan`]) takes byte-identical code paths to a build with no
//!    plan at all, so the golden hashes of `trace_hash/` hold unchanged
//!    (`engine_equivalence` keeps pinning the no-plan and sim-scripted
//!    variants of all six constants in the same suite).
//! 2. **Re-convergence** — after every admitted arrival and departure the
//!    controller re-distributes rates and pulls every processor back to
//!    its utilization set point within 20 sampling periods (±0.03).
//! 3. **Determinism** — stochastic plans are a pure function of their
//!    seed, and a churned loop's trace is a pure function of its spec.

mod trace_hash;

use eucon_control::MpcConfig;
use eucon_core::{
    metrics, AdmissionEvent, AdmissionPolicy, ChurnPlan, ClosedLoop, ControllerSpec, RejectReason,
    RunResult,
};
use eucon_sim::SimConfig;
use eucon_tasks::{workloads, ProcessorId, Task, TaskId};
use proptest::prelude::*;
use trace_hash::{hash_result, Fnv, Scenario};

/// A small end-to-end task spanning both SIMPLE processors, shaped like
/// the workload's own tasks (estimates ~4 ms, rates around 0.05/ms).
fn simple_arrival() -> Task {
    Task::builder(0.02, 0.12, 0.05)
        .subtask(ProcessorId(0), 4.0)
        .subtask(ProcessorId(1), 3.0)
        .build()
        .expect("valid task")
}

/// A MEDIUM-shaped arrival: a three-stage chain across processors 0-2.
fn medium_arrival() -> Task {
    Task::builder(0.01, 0.1, 0.03)
        .subtask(ProcessorId(0), 3.0)
        .subtask(ProcessorId(1), 4.0)
        .subtask(ProcessorId(2), 3.0)
        .build()
        .expect("valid task")
}

// ---- 1. golden-trace safety ----

#[test]
fn zero_churn_plan_preserves_every_golden_hash() {
    for s in Scenario::ALL {
        assert_eq!(
            hash_result(&s.run_single_zero_churn()),
            s.golden(),
            "empty churn plan must not perturb {}",
            s.name()
        );
    }
}

#[test]
fn zero_churn_plan_preserves_distributed_golden_hashes() {
    for s in [Scenario::SimpleFaultFree, Scenario::MediumFaulted] {
        assert_eq!(
            hash_result(&s.run_distributed_zero_churn()),
            s.golden(),
            "empty churn plan must not perturb distributed {}",
            s.name()
        );
    }
}

// ---- 2. membership changes end to end ----

/// Permissive budget: arrivals may transiently project up to 25% above
/// the set points — the controller absorbs the load by redistributing
/// rates (that is the point of combining §6.2 admission with EUCON).
fn permissive() -> AdmissionPolicy {
    AdmissionPolicy {
        admit_threshold: 1.25,
        ..AdmissionPolicy::default()
    }
}

fn run_simple_churn(plan: ChurnPlan, policy: AdmissionPolicy, periods: usize) -> RunResult {
    ClosedLoop::builder(workloads::simple())
        .sim_config(SimConfig::constant_etf(0.5))
        .controller(ControllerSpec::Eucon(MpcConfig::simple()))
        .churn(plan)
        .admission(policy)
        .build()
        .expect("closed loop")
        .run(periods)
}

/// Every processor's utilization, averaged over `[from, to)`, is within
/// `tol` of its set point.
fn converged(result: &RunResult, from: usize, to: usize, tol: f64) {
    for p in 0..result.set_points.len() {
        let b = result.set_points[p];
        let series = result.trace.utilization_series(p);
        let w = metrics::window(&series, from, to);
        assert!(
            (w.mean - b).abs() <= tol,
            "P{} mean {:.4} vs set point {:.4} over [{from}, {to})",
            p + 1,
            w.mean,
            b
        );
    }
}

#[test]
fn arrival_departure_and_mode_change_reconverge_on_simple() {
    // The arrival is plan-space id 3 (after SIMPLE's tasks 0..3); it
    // departs again at 70.  Departing one of the *initial* tasks instead
    // would leave the survivors rate-saturated below the set points —
    // feasibility, not convergence, is what breaks there (the MEDIUM
    // storm test covers initial-task departures with enough slack).
    let plan = ChurnPlan::none()
        .arrival(30, simple_arrival())
        .departure(70, TaskId(3))
        .mode_change(110, TaskId(1), 1.4);
    let result = run_simple_churn(plan, permissive(), 160);

    assert_eq!(result.control_errors, 0);
    let ch = result.churn;
    assert_eq!(ch.admitted, 1);
    assert_eq!(ch.rejected, 0);
    assert_eq!(ch.departed, 1);
    assert_eq!(ch.mode_changes, 1);
    // Every membership change updated the plant model (in place or via
    // rebuild — both count).
    assert_eq!(ch.incremental_updates + ch.model_rebuilds, 2);

    assert!(result
        .trace
        .steps()
        .iter()
        .all(|s| s.rates.iter().all(|r| r.is_finite())));
    // Re-convergence to ±0.03 within 20 periods of each change.
    converged(&result, 50, 70, 0.03); // after the arrival
    converged(&result, 90, 110, 0.03); // after the departure
    converged(&result, 130, 160, 0.03); // after the mode change

    // Telemetry counters agree with the run summary.
    assert_eq!(result.telemetry.counter("tasks_admitted"), Some(1));
    assert_eq!(result.telemetry.counter("tasks_departed"), Some(1));
    assert_eq!(result.telemetry.counter("task_mode_changes"), Some(1));
    assert_eq!(
        result.telemetry.counter("incremental_updates").unwrap_or(0)
            + result.telemetry.counter("model_rebuilds").unwrap_or(0),
        2
    );
}

#[test]
fn over_budget_arrival_defers_then_rejects() {
    // Default budget (threshold 1.0): once EUCON has pulled utilization
    // up to the set points there is no headroom, so the arrival defers
    // for `defer_limit` periods and is then turned away.
    let plan = ChurnPlan::none().arrival(30, simple_arrival());
    let result = run_simple_churn(plan, AdmissionPolicy::default(), 60);

    let ch = result.churn;
    assert_eq!(ch.admitted, 0);
    assert_eq!(ch.rejected, 1);
    assert_eq!(ch.deferred, AdmissionPolicy::default().defer_limit as u64);
    let events = result.admission_events.as_slice();
    assert!(
        events
            .iter()
            .any(|e| matches!(e, AdmissionEvent::Deferred { period: 30 })),
        "first deferral is logged once: {events:?}"
    );
    assert!(
        events.iter().any(|e| matches!(
            e,
            AdmissionEvent::Rejected {
                reason: RejectReason::OverBudget,
                ..
            }
        )),
        "exhausted deferral ends in an over-budget rejection: {events:?}"
    );
    assert_eq!(result.control_errors, 0);
}

#[test]
fn open_controller_refuses_arrivals_but_honors_departures() {
    // OPEN has no per-task plant model: arrivals are rejected outright
    // (not deferred — the refusal is permanent), departures still drain.
    let plan = ChurnPlan::none()
        .arrival(10, simple_arrival())
        .departure(20, TaskId(0));
    let mut cl = ClosedLoop::builder(workloads::simple())
        .sim_config(SimConfig::constant_etf(0.5))
        .controller(ControllerSpec::Open)
        .churn(plan)
        .build()
        .expect("closed loop");
    let result = cl.run(40);

    let ch = result.churn;
    assert_eq!(ch.admitted, 0);
    assert_eq!(ch.deferred, 0);
    assert_eq!(ch.rejected, 1);
    assert_eq!(ch.departed, 1);
    assert!(result.admission_events.iter().any(|e| matches!(
        e,
        AdmissionEvent::Rejected {
            reason: RejectReason::ControllerRefused,
            ..
        }
    )));
    assert_eq!(result.control_errors, 0);
}

#[test]
fn departures_and_mode_changes_on_rejected_arrivals_are_noops() {
    // Plan-space id 3 is the (rejected, default budget) arrival; events
    // that target it must do nothing rather than hit a live task.
    let plan = ChurnPlan::none()
        .arrival(30, simple_arrival())
        .departure(40, TaskId(3))
        .mode_change(45, TaskId(3), 2.0);
    let result = run_simple_churn(plan, AdmissionPolicy::default(), 60);
    let ch = result.churn;
    assert_eq!(ch.rejected, 1);
    assert_eq!(ch.departed, 0);
    assert_eq!(ch.mode_changes, 0);
    assert_eq!(result.control_errors, 0);
}

#[test]
fn medium_churn_storm_reconverges_within_twenty_periods() {
    // The acceptance scenario: MEDIUM (12 tasks, 4 processors) with ~30%
    // membership churn over 500 periods — two arrivals, two departures
    // (one of them a runtime arrival departing again).
    let changes = [100usize, 200, 300, 400];
    let plan = ChurnPlan::none()
        .arrival(changes[0], medium_arrival())
        .departure(changes[1], TaskId(3))
        .arrival(changes[2], medium_arrival())
        .departure(changes[3], TaskId(12)); // plan-space id of the first arrival
    let mut cl = ClosedLoop::builder(workloads::medium())
        .sim_config(SimConfig::constant_etf(0.9))
        .controller(ControllerSpec::Eucon(MpcConfig::medium()))
        .churn(plan)
        .admission(permissive())
        .build()
        .expect("closed loop");
    let result = cl.run(500);

    assert_eq!(result.control_errors, 0, "zero controller errors");
    let ch = result.churn;
    assert_eq!(ch.admitted, 2, "events: {:?}", result.admission_events);
    assert_eq!(ch.departed, 2);
    assert_eq!(ch.rejected, 0);
    assert_eq!(ch.incremental_updates + ch.model_rebuilds, 4);

    // No non-finite rate ever reaches the plant.
    for step in result.trace.steps().iter() {
        assert!(step.rates.iter().all(|r| r.is_finite()));
        assert!(step.utilization.iter().all(|u| u.is_finite()));
    }

    // Within 20 periods of each membership change every processor is
    // back to ±0.03 of its set point (window mean over the next 20).
    for &k in &changes {
        converged(&result, k + 20, k + 40, 0.03);
    }
    // And the run ends converged.
    converged(&result, 460, 500, 0.03);
}

// ---- 3. determinism ----

#[test]
fn identical_churned_specs_produce_identical_traces() {
    let run = |seed: u64| {
        let plan = ChurnPlan::poisson(&workloads::simple(), 80, 0.05, 0.03, seed);
        let result = run_simple_churn(plan, permissive(), 80);
        let mut h = Fnv::new();
        for step in result.trace.steps().iter() {
            h.f64(step.time);
            h.vector(&step.utilization);
            h.vector(&step.rates);
        }
        (h.0, result.churn)
    };
    for seed in [0u64, 7, 42] {
        let (h1, c1) = run(seed);
        let (h2, c2) = run(seed);
        assert_eq!(h1, h2, "seed {seed}: trace must be reproducible");
        assert_eq!(c1, c2, "seed {seed}: churn summary must be reproducible");
    }
}

proptest! {
    #[test]
    fn poisson_plans_are_pure_functions_of_their_seed(
        seed in 0u64..1_000_000,
        pa in 0.0f64..0.3,
        pd in 0.0f64..0.3,
    ) {
        let set = workloads::simple();
        let a = ChurnPlan::poisson(&set, 120, pa, pd, seed);
        let b = ChurnPlan::poisson(&set, 120, pa, pd, seed);
        prop_assert_eq!(&a, &b);
        // Every generated plan validates against its task set.
        prop_assert!(a.validate(&set).is_ok());
    }
}
