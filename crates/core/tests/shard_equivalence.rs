//! Equivalence pins for the cluster-scale sharded controller.
//!
//! Three bit-identity contracts gate the sharded path (ISSUE 8):
//!
//! 1. **K=1 ≡ DEUCON** — the singleton shard plan reproduces the
//!    decentralized team exactly: same construction, same sweep order,
//!    bit-identical closed-loop traces.
//! 2. **Ideal lanes ≡ in-process** — routing the boundary exchange over
//!    lossless same-period `eucon-net` lanes must not perturb a single
//!    bit of the sweep.
//! 3. Both hold through the full distributed stack (per-processor
//!    report/command lanes *and* per-shard boundary lanes at once).

mod trace_hash;

use eucon_control::MpcConfig;
use eucon_core::{BoundaryMode, ClosedLoop, ControllerSpec, DistributedLoop, RunResult};
use eucon_sim::{ExecModel, SimConfig};
use eucon_tasks::workloads;
use trace_hash::hash_result;

const PERIODS: usize = 60;

fn sim_config() -> SimConfig {
    SimConfig::constant_etf(0.9)
        .exec_model(ExecModel::Uniform { half_width: 0.2 })
        .seed(3)
}

fn run_closed(spec: ControllerSpec) -> RunResult {
    ClosedLoop::builder(workloads::medium())
        .sim_config(sim_config())
        .controller(spec)
        .build()
        .expect("closed loop")
        .run(PERIODS)
}

fn run_distributed(spec: ControllerSpec) -> RunResult {
    DistributedLoop::builder(workloads::medium())
        .sim_config(sim_config())
        .controller(spec)
        .channel(4)
        .build()
        .expect("distributed loop")
        .run(PERIODS)
}

fn sharded(shard_size: usize, boundary: BoundaryMode) -> ControllerSpec {
    ControllerSpec::Sharded {
        mpc: MpcConfig::medium(),
        shard_size,
        boundary,
    }
}

#[test]
fn k1_sharded_bit_identical_to_decentralized() {
    let reference = run_closed(ControllerSpec::Decentralized(MpcConfig::medium()));
    let singleton = run_closed(sharded(1, BoundaryMode::InProcess));
    assert_eq!(
        hash_result(&reference),
        hash_result(&singleton),
        "K=1 sharded trace diverged from DecentralizedController"
    );
}

#[test]
fn k1_over_ideal_lanes_bit_identical_to_decentralized() {
    let reference = run_closed(ControllerSpec::Decentralized(MpcConfig::medium()));
    let lanes = run_closed(sharded(1, BoundaryMode::IdealLanes));
    assert_eq!(
        hash_result(&reference),
        hash_result(&lanes),
        "K=1 sharded-over-lanes trace diverged from DecentralizedController"
    );
}

#[test]
fn ideal_lanes_bit_identical_to_in_process_exchange() {
    let direct = run_closed(sharded(2, BoundaryMode::InProcess));
    let lanes = run_closed(sharded(2, BoundaryMode::IdealLanes));
    assert_eq!(
        hash_result(&direct),
        hash_result(&lanes),
        "boundary lanes perturbed the sweep"
    );
}

#[test]
fn distributed_loop_carries_the_sharded_team_unchanged() {
    // Per-processor feedback lanes and per-shard boundary lanes at once:
    // the full distributed stack must still match the single-process loop.
    let single = run_closed(sharded(2, BoundaryMode::IdealLanes));
    let distributed = run_distributed(sharded(2, BoundaryMode::IdealLanes));
    assert_eq!(
        hash_result(&single),
        hash_result(&distributed),
        "distributed stack perturbed the sharded trace"
    );
}

#[test]
fn sharded_converges_within_spec_on_medium() {
    // The ISSUE's convergence gate at workload scale: every processor
    // within ±0.03 of its set point by period 150.
    let result = ClosedLoop::builder(workloads::medium())
        .sim_config(sim_config())
        .controller(sharded(2, BoundaryMode::IdealLanes))
        .build()
        .expect("closed loop")
        .run(150);
    let set = workloads::medium();
    let b = eucon_tasks::rms_set_points(&set);
    for p in 0..set.num_processors() {
        // Windowed mean over the settled tail — the noise of a single
        // stochastic sample is not a convergence property.
        let w = eucon_core::metrics::window(&result.trace.utilization_series(p), 120, 150);
        let err = (w.mean - b[p]).abs();
        assert!(err <= 0.03, "processor {p} err {err:.4} at period 150");
    }
    assert_eq!(result.control_errors, 0);
}
