//! Allocation-guard regression test for the closed-loop hot path.
//!
//! The event-engine overhaul's contract (ISSUE 3): in the fault-free
//! steady state a sampling period performs **zero heap allocations** —
//! the indexed event queue updates sources in place, utilization sampling
//! writes into persistent scratch, the controller commits rates
//! internally, and actuation passes them by reference.
//!
//! The telemetry layer (ISSUE 4) must preserve this: the metric registry
//! is fully preallocated at build and updated in place every period, so
//! the guarantee holds with telemetry at the default level — and even
//! with an in-memory ring sink attached, whose slots recycle once the
//! ring fills.
//!
//! A counting `#[global_allocator]` makes the contract checkable.  The
//! file contains a single `#[test]` on purpose: the counter is global, so
//! concurrent tests in the same binary would pollute each other's deltas.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use eucon_core::{ClosedLoop, ControllerSpec};
use eucon_sim::SimConfig;
use eucon_tasks::workloads;

/// Passes every request to the system allocator, counting them.
struct Counting;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: Counting = Counting;

fn allocations() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Allocations performed by `periods` closed-loop steps.
fn measure(cl: &mut ClosedLoop, periods: usize) -> u64 {
    let before = allocations();
    for _ in 0..periods {
        cl.step();
    }
    allocations() - before
}

#[test]
fn fault_free_steady_state_period_is_allocation_free() {
    // 1. OPEN controller, trace recording off: the period step must not
    // allocate at all.  OPEN isolates the plant + monitor + actuation
    // path — its own update is trivially allocation-free.
    let mut cl = ClosedLoop::builder(workloads::medium())
        .sim_config(SimConfig::constant_etf(0.5))
        .controller(ControllerSpec::Open)
        .record_trace(false)
        .build()
        .unwrap();
    // Warm-up: ready queues, release-guard pending lists and in-flight
    // rings grow to their steady-state capacity during the first periods
    // (the slowest tasks release only a handful of jobs per period, so
    // their rings keep growing for tens of periods).
    for _ in 0..100 {
        cl.step();
    }
    let steady = measure(&mut cl, 50);
    assert_eq!(
        steady, 0,
        "fault-free OPEN steady state must not allocate (got {steady} over 50 periods)"
    );
    let counters = cl.simulator().counters();
    assert!(counters.events > 1000, "the plant really ran: {counters:?}");
    assert_eq!(
        counters.stale_wakeups, 0,
        "constant execution times never leave residual work"
    );
    // The default-level telemetry registry was live the whole time.
    let snap = cl.telemetry().snapshot();
    assert_eq!(snap.counter("periods"), Some(150));
    assert_eq!(snap.histogram("span_control_ns").unwrap().count, 150);

    // 1b. Same loop with an in-memory ring sink attached: once the ring
    // has filled, its slots recycle and the period stays allocation-free.
    let mut ringed = ClosedLoop::builder(workloads::medium())
        .sim_config(SimConfig::constant_etf(0.5))
        .controller(ControllerSpec::Open)
        .record_trace(false)
        .telemetry_sink(eucon_core::telemetry::RingBufferSink::new(32))
        .build()
        .unwrap();
    for _ in 0..100 {
        ringed.step();
    }
    let ring_steady = measure(&mut ringed, 50);
    assert_eq!(
        ring_steady, 0,
        "ring-sink steady state must not allocate (got {ring_steady} over 50 periods)"
    );

    // 2. Same loop with trace recording on: the only per-period
    // allocations are the recorded step's two vectors (utilization +
    // rates) plus amortized growth of the trace itself.
    let mut recording = ClosedLoop::builder(workloads::medium())
        .sim_config(SimConfig::constant_etf(0.5))
        .controller(ControllerSpec::Open)
        .build()
        .unwrap();
    for _ in 0..20 {
        recording.step();
    }
    let recorded = measure(&mut recording, 50);
    assert!(
        recorded <= 2 * 50 + 10,
        "recording may only pay for the trace itself: {recorded} allocations over 50 periods"
    );

    // 2b. Churn-enabled loop (ISSUE 7), OPEN controller: once the plan's
    // membership changes have all fired, the per-period churn check is a
    // constant-time cursor/pending inspection and the actuation slow path
    // assembles commands into a persistent scratch — steady-state periods
    // *between* membership changes stay allocation-free.
    let mut churned = ClosedLoop::builder(workloads::medium())
        .sim_config(SimConfig::constant_etf(0.5))
        .controller(ControllerSpec::Open)
        .churn(
            eucon_core::ChurnPlan::none()
                .departure(5, eucon_tasks::TaskId(2))
                .mode_change(8, eucon_tasks::TaskId(0), 1.2),
        )
        .record_trace(false)
        .build()
        .unwrap();
    for _ in 0..200 {
        churned.step();
    }
    assert_eq!(churned.churn_summary().departed, 1, "the plan really ran");
    let churn_steady = measure(&mut churned, 50);
    assert_eq!(
        churn_steady, 0,
        "steady state between membership changes must not allocate \
         (got {churn_steady} over 50 periods)"
    );

    // 3. EUCON (MPC): the controller's scratch buffers are persistent,
    // but the QP solver allocates its solution internally — the honest
    // claim is *bounded and steady*, not zero.  Two consecutive windows
    // must cost the same (no drift, no accumulation).
    let mut eucon = ClosedLoop::builder(workloads::medium())
        .sim_config(SimConfig::constant_etf(0.5))
        .controller(ControllerSpec::Eucon(eucon_control::MpcConfig::medium()))
        .record_trace(false)
        .build()
        .unwrap();
    for _ in 0..40 {
        eucon.step();
    }
    let w1 = measure(&mut eucon, 50);
    let w2 = measure(&mut eucon, 50);
    assert!(
        w2 <= w1 + w1 / 10 + 8,
        "EUCON per-period allocations must be steady: {w1} then {w2}"
    );
}
