//! Allocation-guard regression test for the distributed hot path over
//! the many-lane poll engine.
//!
//! The poll engine's contract (the async-lane overhaul): in the
//! fault-free steady state a distributed sampling period performs
//! **zero heap allocations** — reports and commands are encoded into a
//! persistent scratch buffer straight from iterators ([`encode_frame`]
//! keeps the send path `Vec`-free), received frames decode zero-copy as
//! [`FrameView`]s borrowed from the reader's buffer, and the per-lane
//! hold/stale bookkeeping lives in preallocated vectors.
//!
//! A counting `#[global_allocator]` makes the contract checkable.  The
//! file contains a single `#[test]` on purpose: the counter is global,
//! so concurrent tests in the same binary would pollute each other's
//! deltas.
//!
//! [`encode_frame`]: eucon_core::net::encode_frame
//! [`FrameView`]: eucon_core::net::FrameView

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use eucon_core::{ControllerSpec, DistributedLoop};
use eucon_sim::SimConfig;
use eucon_tasks::workloads;

/// Passes every request to the system allocator, counting them.
struct Counting;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: Counting = Counting;

fn allocations() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Allocations performed by `periods` distributed steps.
fn measure(dl: &mut DistributedLoop, periods: usize) -> u64 {
    let before = allocations();
    for _ in 0..periods {
        dl.step();
    }
    allocations() - before
}

#[test]
fn poll_engine_steady_state_period_is_allocation_free() {
    // OPEN controller over real loopback-TCP poll lanes, trace
    // recording off: the distributed period must not allocate at all.
    // OPEN isolates the transport + plant + monitor + actuation path —
    // its own update is trivially allocation-free, so every allocation
    // seen here would be the lane engine's.
    let mut dl = DistributedLoop::builder(workloads::medium())
        .sim_config(SimConfig::constant_etf(0.5))
        .controller(ControllerSpec::Open)
        .record_trace(false)
        .tcp_poll(Default::default())
        .recv_timeout(Duration::from_millis(200))
        .build()
        .unwrap();
    // Warm-up: frame readers, encode scratch, ready queues and
    // in-flight rings grow to steady-state capacity during the first
    // periods.
    for _ in 0..100 {
        dl.step();
    }
    let steady = measure(&mut dl, 50);
    assert_eq!(
        steady, 0,
        "poll-engine steady state must not allocate (got {steady} over 50 periods)"
    );
    // The lanes really carried every frame: one report and one command
    // per processor per period, zero drops, zero decode errors.
    let stats = dl.transport_stats();
    let lanes = dl.set_points().len() as u64;
    assert_eq!(stats.sent, 2 * lanes * 150);
    assert_eq!(stats.received, 2 * lanes * 150);
    assert_eq!(stats.dropped, 0);
    assert_eq!(stats.decode_errors, 0);
    assert_eq!(dl.backend_name(), "tcp-poll");
}
