//! Linux-only smoke test for the real-OS plant (feature `os-plant`).
//!
//! Spawns real CPU-bound worker processes and checks that rate commands
//! actuate: driving the tasks from `Rmin` to `Rmax` must move the
//! measured per-processor utilization in the right direction.  The test
//! skips itself (with a note on stderr) when no writable cgroup v2 CPU
//! controller is available — the renice fallback is too weak to assert
//! a direction on a shared CI box.
#![cfg(feature = "os-plant")]

use std::time::Duration;

use eucon_core::{LoopBuilder, OsPlant, OsPlantConfig, Plant};
use eucon_math::Vector;
use eucon_tasks::{ProcessorId, Task, TaskSet};

/// Two single-subtask tasks on two processors — two worker processes.
fn two_workers() -> TaskSet {
    let mut set = TaskSet::new(2);
    for p in 0..2 {
        set.add_task(
            Task::builder(1.0 / 700.0, 1.0 / 35.0, 1.0 / 60.0)
                .subtask(ProcessorId(p), 35.0)
                .build()
                .expect("static two-worker task is valid"),
        )
        .expect("two-worker set admits its tasks");
    }
    set
}

/// Average total utilization over `periods` sampling periods, after one
/// settling period so stale CPU-time deltas from before the rate change
/// don't leak into the measurement.
fn measure(plant: &mut OsPlant, periods: usize) -> f64 {
    let mut u = Vector::zeros(plant.num_processors());
    plant.advance_to(0.0);
    let mut total = 0.0;
    for _ in 0..periods {
        plant.advance_to(0.0);
        plant.sample_into(&mut u);
        total += u.as_slice().iter().sum::<f64>();
    }
    total / periods as f64
}

/// Runs everywhere Linux-ish: even without cgroups (renice fallback) the
/// plant must spawn real workers, sample finite utilizations from
/// `/proc`, and clean up its children on drop.
#[test]
fn os_plant_spawns_samples_and_cleans_up_without_cgroups() {
    let set = two_workers();
    let cfg = OsPlantConfig::new().wall_period(Duration::from_millis(100));
    let mut plant = match OsPlant::spawn(&set, cfg) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("skipping os_plant_smoke: cannot spawn workers: {e}");
            return;
        }
    };
    let mut u = Vector::zeros(plant.num_processors());
    for _ in 0..3 {
        plant.advance_to(0.0);
        plant.sample_into(&mut u);
    }
    for p in 0..u.len() {
        assert!(
            u[p].is_finite() && u[p] >= 0.0,
            "sampled utilization for processor {p} is usable: {}",
            u[p]
        );
    }
    // Busy-loop workers with CPU to burn should register *some* load.
    assert!(
        u.as_slice().iter().sum::<f64>() > 0.0,
        "busy workers should consume measurable CPU: {:?}",
        u.as_slice()
    );
}

#[test]
fn rate_actuation_moves_utilization_in_the_right_direction() {
    if !OsPlantConfig::cgroups_available() {
        eprintln!("skipping os_plant_smoke: no writable cgroup v2 cpu controller");
        return;
    }
    let set = two_workers();
    let cfg = OsPlantConfig::new()
        .wall_period(Duration::from_millis(200))
        .require_cgroups(true);
    let mut plant = OsPlant::spawn(&set, cfg).expect("os plant spawns under cgroups");
    assert!(plant.using_cgroups());
    assert_eq!(plant.num_tasks(), 2);
    assert_eq!(plant.num_processors(), 2);

    let low: Vector = set.tasks().iter().map(|t| t.rate_min()).collect();
    let high: Vector = set.tasks().iter().map(|t| t.rate_max()).collect();

    plant.apply_rates(&low);
    let u_low = measure(&mut plant, 3);
    plant.apply_rates(&high);
    let u_high = measure(&mut plant, 3);

    // At Rmax each worker is granted max_share (0.5 CPU); at Rmin the
    // quota is 35/700 of that.  Demand a clear gap, not a exact value —
    // CI boxes are noisy.
    assert!(
        u_high > u_low + 0.2,
        "raising rates Rmin->Rmax should raise measured utilization: \
         u_low = {u_low:.3}, u_high = {u_high:.3}"
    );
}

#[test]
fn closed_loop_drives_the_os_plant() {
    if !OsPlantConfig::cgroups_available() {
        eprintln!("skipping os_plant_smoke: no writable cgroup v2 cpu controller");
        return;
    }
    let mut cl = LoopBuilder::new(two_workers())
        .plant(
            OsPlantConfig::new()
                .wall_period(Duration::from_millis(100))
                .require_cgroups(true),
        )
        .local()
        .expect("loop builds against the os backend");
    cl.run(5);
    let rates = cl.plant().rates_in_force();
    for (t, r) in rates.iter().enumerate() {
        assert!(
            r.is_finite() && *r > 0.0,
            "controller produced a usable rate for task {t}: {r}"
        );
    }
}
