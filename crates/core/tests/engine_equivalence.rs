//! Golden-trace determinism tests for the event engine.
//!
//! The indexed per-source event queue (PR 3) must be *observationally
//! identical* to the tombstone-heap engine it replaced: same seeds, same
//! workloads, same fault scripts → bit-identical [`TraceStep`] sequences.
//! These tests pin FNV-1a hashes of complete closed-loop traces (every
//! `f64` hashed by its bit pattern, so even 1-ulp drift fails) captured
//! from the reference engine, for the paper's SIMPLE and MEDIUM workloads,
//! fault-free and under a scripted fault plan (processor crash + lossy
//! actuation lanes).  The scenarios and hash live in `trace_hash/` and are
//! shared with `transport_equivalence`, which pins the distributed loop to
//! the same constants.
//!
//! If an intentional semantic change to the engine breaks these, re-capture
//! with:
//!
//! ```text
//! cargo test -p eucon-core --test engine_equivalence -- --ignored --nocapture
//! ```

mod trace_hash;

use eucon_sim::{ExecModel, SimConfig, Simulator};
use eucon_tasks::{workloads, ProcessorId, TaskId};
use trace_hash::{hash_result, Fnv, Scenario};

/// A pure-simulator scenario with a scripted rate/suspend/crash sequence,
/// hashing the sampled utilizations and final statistics — this drives
/// every reschedule path in the engine without a controller in the loop.
fn scripted_sim(set: eucon_tasks::TaskSet, seed: u64) -> u64 {
    let m = set.num_tasks();
    let n = set.num_processors();
    let cfg = SimConfig::constant_etf(0.8)
        .exec_model(ExecModel::Uniform { half_width: 0.3 })
        .seed(seed);
    let mut sim = Simulator::new(set, cfg);
    let mut h = Fnv::new();
    for k in 1..=30u64 {
        sim.run_until(k as f64 * 500.0);
        h.vector(&sim.sample_utilizations());
        // Deterministic rate churn touching every task.
        for t in 0..m {
            let r = sim.rates()[t];
            let factor = 0.7 + 0.6 * (((k as usize + t) % 5) as f64) / 4.0;
            sim.set_rate(TaskId(t), r * factor);
        }
        if k % 7 == 0 {
            sim.suspend_task(TaskId((k as usize) % m));
        }
        if k % 7 == 3 {
            sim.resume_task(TaskId(((k - 3) as usize) % m));
        }
        if k == 10 {
            sim.crash_processor(ProcessorId(n - 1));
        }
        if k == 14 {
            sim.recover_processor(ProcessorId(n - 1));
        }
    }
    let d = sim.deadline_stats();
    h.u64(d.met);
    h.u64(d.missed);
    for stats in sim.task_stats() {
        h.u64(stats.completed);
        h.u64(stats.missed);
        h.f64(stats.response_time_sum);
        h.f64(stats.response_time_max);
    }
    h.0
}

// ---- golden hashes of the sim-only scripted scenarios ----

const GOLDEN_SCRIPTED_SIMPLE: u64 = 0x6dd9_3a7f_b2fc_9bd4;
const GOLDEN_SCRIPTED_MEDIUM: u64 = 0x80be_e3a9_2814_cc36;

#[test]
fn golden_simple_fault_free() {
    let s = Scenario::SimpleFaultFree;
    assert_eq!(hash_result(&s.run_single()), s.golden());
}

#[test]
fn golden_medium_fault_free() {
    let s = Scenario::MediumFaultFree;
    assert_eq!(hash_result(&s.run_single()), s.golden());
}

#[test]
fn golden_simple_faulted() {
    let s = Scenario::SimpleFaulted;
    assert_eq!(hash_result(&s.run_single()), s.golden());
}

#[test]
fn golden_medium_faulted() {
    let s = Scenario::MediumFaulted;
    assert_eq!(hash_result(&s.run_single()), s.golden());
}

#[test]
fn golden_scripted_sim_simple() {
    assert_eq!(
        scripted_sim(workloads::simple(), 11),
        GOLDEN_SCRIPTED_SIMPLE
    );
}

#[test]
fn golden_scripted_sim_medium() {
    assert_eq!(
        scripted_sim(workloads::medium(), 12),
        GOLDEN_SCRIPTED_MEDIUM
    );
}

/// Capture mode: prints the constants blocks (the closed-loop ones belong
/// in `trace_hash/mod.rs`).  Run with `-- --ignored --nocapture` and paste
/// the output.
#[test]
#[ignore = "recapture tool, not a test"]
fn print_golden_hashes() {
    for s in Scenario::ALL {
        println!(
            "pub const GOLDEN_{}: u64 = {:#018x};",
            s.name().to_uppercase(),
            hash_result(&s.run_single())
        );
    }
    println!(
        "const GOLDEN_SCRIPTED_SIMPLE: u64 = {:#018x};",
        scripted_sim(workloads::simple(), 11)
    );
    println!(
        "const GOLDEN_SCRIPTED_MEDIUM: u64 = {:#018x};",
        scripted_sim(workloads::medium(), 12)
    );
}
