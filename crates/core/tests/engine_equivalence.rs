//! Golden-trace determinism tests for the event engine.
//!
//! The indexed per-source event queue (PR 3) must be *observationally
//! identical* to the tombstone-heap engine it replaced: same seeds, same
//! workloads, same fault scripts → bit-identical [`TraceStep`] sequences.
//! These tests pin FNV-1a hashes of complete closed-loop traces (every
//! `f64` hashed by its bit pattern, so even 1-ulp drift fails) captured
//! from the reference engine, for the paper's SIMPLE and MEDIUM workloads,
//! fault-free and under a scripted fault plan (processor crash + lossy
//! actuation lanes).
//!
//! If an intentional semantic change to the engine breaks these, re-capture
//! with:
//!
//! ```text
//! cargo test -p eucon-core --test engine_equivalence -- --ignored --nocapture
//! ```

use eucon_control::MpcConfig;
use eucon_core::{ClosedLoop, ControllerSpec, RunResult};
use eucon_math::Vector;
use eucon_sim::{ExecModel, FaultPlan, SimConfig, Simulator};
use eucon_tasks::{workloads, ProcessorId, TaskId};

// ---- FNV-1a 64 over the bit patterns of the trace ----

struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn byte(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }
    fn u64(&mut self, x: u64) {
        for b in x.to_le_bytes() {
            self.byte(b);
        }
    }
    fn f64(&mut self, x: f64) {
        self.u64(x.to_bits());
    }
    fn vector(&mut self, v: &Vector) {
        self.u64(v.len() as u64);
        for &x in v.iter() {
            self.f64(x);
        }
    }
}

/// Hashes everything a closed-loop run observes: each step's time, true
/// utilizations, sensed/received report, applied rates and annotations,
/// plus the final deadline statistics.
fn hash_result(result: &RunResult) -> u64 {
    let mut h = Fnv::new();
    for step in result.trace.steps() {
        h.f64(step.time);
        h.vector(&step.utilization);
        match &step.received {
            None => h.byte(0),
            Some(v) => {
                h.byte(1);
                h.vector(v);
            }
        }
        h.vector(&step.rates);
        let ann = &step.annotations;
        h.u64(ann.crashed.len() as u64);
        for &p in &ann.crashed {
            h.u64(p as u64);
        }
        h.u64(ann.actuation_dropped.len() as u64);
        for &p in &ann.actuation_dropped {
            h.u64(p as u64);
        }
        h.byte(ann.degraded as u8);
        h.byte(ann.control_error as u8);
    }
    h.u64(result.deadlines.met);
    h.u64(result.deadlines.missed);
    h.u64(result.control_errors as u64);
    h.0
}

// ---- scenario constructors (shared by the pinned tests and recapture) ----

fn simple_fault_free() -> RunResult {
    ClosedLoop::builder(workloads::simple())
        .sim_config(SimConfig::constant_etf(0.5))
        .controller(ControllerSpec::Eucon(MpcConfig::simple()))
        .build()
        .expect("closed loop")
        .run(40)
}

fn medium_fault_free() -> RunResult {
    let cfg = SimConfig::constant_etf(1.0)
        .exec_model(ExecModel::Uniform { half_width: 0.2 })
        .seed(1);
    ClosedLoop::builder(workloads::medium())
        .sim_config(cfg)
        .controller(ControllerSpec::Eucon(MpcConfig::medium()))
        .build()
        .expect("closed loop")
        .run(40)
}

fn fault_plan() -> FaultPlan {
    // Crash + lossy actuation lanes: exercises NaN sensors, supervisor
    // degradation, per-processor rate freezing and recovery reschedules.
    FaultPlan::none()
        .crash(1, 10, 18)
        .actuation_loss(0.3)
        .seed(7)
}

fn simple_faulted() -> RunResult {
    ClosedLoop::builder(workloads::simple())
        .sim_config(SimConfig::constant_etf(0.5))
        .controller(ControllerSpec::SupervisedEucon {
            mpc: MpcConfig::simple(),
            supervisor: Default::default(),
        })
        .faults(fault_plan())
        .build()
        .expect("closed loop")
        .run(40)
}

fn medium_faulted() -> RunResult {
    let cfg = SimConfig::constant_etf(1.0)
        .exec_model(ExecModel::Uniform { half_width: 0.2 })
        .seed(1);
    ClosedLoop::builder(workloads::medium())
        .sim_config(cfg)
        .controller(ControllerSpec::SupervisedEucon {
            mpc: MpcConfig::medium(),
            supervisor: Default::default(),
        })
        .faults(fault_plan())
        .build()
        .expect("closed loop")
        .run(40)
}

/// A pure-simulator scenario with a scripted rate/suspend/crash sequence,
/// hashing the sampled utilizations and final statistics — this drives
/// every reschedule path in the engine without a controller in the loop.
fn scripted_sim(set: eucon_tasks::TaskSet, seed: u64) -> u64 {
    let m = set.num_tasks();
    let n = set.num_processors();
    let cfg = SimConfig::constant_etf(0.8)
        .exec_model(ExecModel::Uniform { half_width: 0.3 })
        .seed(seed);
    let mut sim = Simulator::new(set, cfg);
    let mut h = Fnv::new();
    for k in 1..=30u64 {
        sim.run_until(k as f64 * 500.0);
        h.vector(&sim.sample_utilizations());
        // Deterministic rate churn touching every task.
        for t in 0..m {
            let r = sim.rates()[t];
            let factor = 0.7 + 0.6 * (((k as usize + t) % 5) as f64) / 4.0;
            sim.set_rate(TaskId(t), r * factor);
        }
        if k % 7 == 0 {
            sim.suspend_task(TaskId((k as usize) % m));
        }
        if k % 7 == 3 {
            sim.resume_task(TaskId(((k - 3) as usize) % m));
        }
        if k == 10 {
            sim.crash_processor(ProcessorId(n - 1));
        }
        if k == 14 {
            sim.recover_processor(ProcessorId(n - 1));
        }
    }
    let d = sim.deadline_stats();
    h.u64(d.met);
    h.u64(d.missed);
    for stats in sim.task_stats() {
        h.u64(stats.completed);
        h.u64(stats.missed);
        h.f64(stats.response_time_sum);
        h.f64(stats.response_time_max);
    }
    h.0
}

// ---- golden hashes captured from the reference engine ----

const GOLDEN_SIMPLE_FAULT_FREE: u64 = 0xb286_0648_874c_a00f;
const GOLDEN_MEDIUM_FAULT_FREE: u64 = 0xae12_aab1_5672_e1a9;
const GOLDEN_SIMPLE_FAULTED: u64 = 0x82e1_1b45_8111_02a0;
const GOLDEN_MEDIUM_FAULTED: u64 = 0x0920_d34b_7e38_0a57;
const GOLDEN_SCRIPTED_SIMPLE: u64 = 0x6dd9_3a7f_b2fc_9bd4;
const GOLDEN_SCRIPTED_MEDIUM: u64 = 0x80be_e3a9_2814_cc36;

#[test]
fn golden_simple_fault_free() {
    assert_eq!(hash_result(&simple_fault_free()), GOLDEN_SIMPLE_FAULT_FREE);
}

#[test]
fn golden_medium_fault_free() {
    assert_eq!(hash_result(&medium_fault_free()), GOLDEN_MEDIUM_FAULT_FREE);
}

#[test]
fn golden_simple_faulted() {
    assert_eq!(hash_result(&simple_faulted()), GOLDEN_SIMPLE_FAULTED);
}

#[test]
fn golden_medium_faulted() {
    assert_eq!(hash_result(&medium_faulted()), GOLDEN_MEDIUM_FAULTED);
}

#[test]
fn golden_scripted_sim_simple() {
    assert_eq!(
        scripted_sim(workloads::simple(), 11),
        GOLDEN_SCRIPTED_SIMPLE
    );
}

#[test]
fn golden_scripted_sim_medium() {
    assert_eq!(
        scripted_sim(workloads::medium(), 12),
        GOLDEN_SCRIPTED_MEDIUM
    );
}

/// Capture mode: prints the constants block above.  Run with
/// `-- --ignored --nocapture` and paste the output.
#[test]
#[ignore = "recapture tool, not a test"]
fn print_golden_hashes() {
    println!(
        "const GOLDEN_SIMPLE_FAULT_FREE: u64 = {:#018x};",
        hash_result(&simple_fault_free())
    );
    println!(
        "const GOLDEN_MEDIUM_FAULT_FREE: u64 = {:#018x};",
        hash_result(&medium_fault_free())
    );
    println!(
        "const GOLDEN_SIMPLE_FAULTED: u64 = {:#018x};",
        hash_result(&simple_faulted())
    );
    println!(
        "const GOLDEN_MEDIUM_FAULTED: u64 = {:#018x};",
        hash_result(&medium_faulted())
    );
    println!(
        "const GOLDEN_SCRIPTED_SIMPLE: u64 = {:#018x};",
        scripted_sim(workloads::simple(), 11)
    );
    println!(
        "const GOLDEN_SCRIPTED_MEDIUM: u64 = {:#018x};",
        scripted_sim(workloads::medium(), 12)
    );
}
