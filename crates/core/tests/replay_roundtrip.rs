//! Record → replay round trip for the [`ReplayTrace`] plant backend.
//!
//! A simulator-backed loop records its telemetry to JSONL (the PR-4
//! schema); a second loop replays that file through
//! `LoopBuilder::plant(trace)`.  Because the controller is a pure
//! function of the utilization sequence, and the replay plant clamps
//! rate commands exactly like the simulator's modulators, the replayed
//! run must reproduce the recorded utilization *and* rate sequences
//! down to the f64 bit pattern — across workloads and seeds.

use std::fs;
use std::path::PathBuf;

use proptest::prelude::*;

use eucon_core::{ClosedLoop, ReplayTrace};
use eucon_tasks::workloads::{self, RandomWorkload};
use eucon_tasks::TaskSet;
use eucon_telemetry::JsonlSink;

/// A scratch JSONL path unique to this test process and tag.
fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("eucon-replay-{}-{tag}.jsonl", std::process::id()))
}

/// Runs a simulator-backed loop for `periods`, recording telemetry to
/// `path`, and returns its per-period (utilization, rates) sequences.
fn record(set: TaskSet, periods: usize, path: &PathBuf) -> Vec<(Vec<u64>, Vec<u64>)> {
    let sink = JsonlSink::create(path).expect("scratch file is creatable");
    let mut cl = ClosedLoop::builder(set)
        .record_trace(true)
        .telemetry_sink(sink)
        .telemetry_batch(1)
        .build()
        .expect("recording loop builds");
    let result = cl.run(periods);
    bit_sequences(&result.trace)
}

/// Replays `path` against the same task set and returns the same
/// per-period bit sequences.
fn replay(set: TaskSet, periods: usize, path: &PathBuf) -> Vec<(Vec<u64>, Vec<u64>)> {
    let trace = ReplayTrace::load(path).expect("recorded telemetry parses");
    assert_eq!(trace.len(), periods, "one telemetry row per period");
    let mut cl = ClosedLoop::builder(set)
        .record_trace(true)
        .plant(trace)
        .build()
        .expect("replay loop builds");
    let result = cl.run(periods);
    bit_sequences(&result.trace)
}

/// Collapses a trace to f64 bit patterns so comparisons are exact
/// (NaN-safe, no epsilon).
fn bit_sequences(trace: &eucon_core::Trace) -> Vec<(Vec<u64>, Vec<u64>)> {
    trace
        .steps()
        .iter()
        .map(|s| {
            (
                s.utilization
                    .as_slice()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect(),
                s.rates.as_slice().iter().map(|v| v.to_bits()).collect(),
            )
        })
        .collect()
}

fn assert_roundtrip(set: TaskSet, periods: usize, tag: &str) {
    let path = scratch(tag);
    let recorded = record(set.clone(), periods, &path);
    let replayed = replay(set, periods, &path);
    let _ = fs::remove_file(&path);
    assert_eq!(recorded.len(), replayed.len(), "{tag}: same period count");
    for (k, (rec, rep)) in recorded.iter().zip(&replayed).enumerate() {
        assert_eq!(
            rec.0, rep.0,
            "{tag}: utilization bits diverge at period {k}"
        );
        assert_eq!(rec.1, rep.1, "{tag}: rate bits diverge at period {k}");
    }
}

#[test]
fn simple_workload_replays_bit_identically() {
    assert_roundtrip(workloads::simple(), 60, "simple");
}

#[test]
fn medium_workload_replays_bit_identically() {
    assert_roundtrip(workloads::medium(), 40, "medium");
}

#[test]
fn random_workloads_replay_bit_identically_across_seeds() {
    for seed in [7u64, 42, 1999] {
        let set = RandomWorkload::new(4, 12).seed(seed).generate();
        assert_roundtrip(set, 30, &format!("seed{seed}"));
    }
}

proptest! {
    /// Property form: any feasible random workload/seed/length replays
    /// bit-identically.
    #[test]
    fn replay_roundtrip_is_bit_identical(
        seed in 0u64..10_000,
        periods in 5usize..25,
    ) {
        let set = RandomWorkload::new(3, 6).seed(seed).generate();
        let path = scratch(&format!("prop{seed}-{periods}"));
        let recorded = record(set.clone(), periods, &path);
        let replayed = replay(set, periods, &path);
        let _ = fs::remove_file(&path);
        prop_assert_eq!(recorded, replayed);
    }
}

/// A recording chopped off mid-line (a crashed writer) surfaces as a
/// typed decode error naming the bad line — not a panic, not a generic
/// parse failure.
#[test]
fn truncated_recording_yields_typed_decode_error() {
    let path = scratch("truncated");
    record(workloads::simple(), 10, &path);
    let mut text = fs::read_to_string(&path).expect("recording readable");
    let _ = fs::remove_file(&path);
    // Chop the last line in half, mid-object.
    let cut = text.rfind("\"u_p1\"").expect("rows carry u_p1");
    text.truncate(cut + 4);
    let err = ReplayTrace::parse(&text).expect_err("truncated line must not parse");
    assert_eq!(err.line, 10, "error names the truncated line");
    assert_eq!(err.schema, eucon_core::REPLAY_SCHEMA_VERSION);
}

/// A corrupted cell (bitrot, hand editing) names the column and line.
#[test]
fn corrupt_value_yields_typed_decode_error() {
    let path = scratch("corrupt");
    record(workloads::simple(), 5, &path);
    let text = fs::read_to_string(&path).expect("recording readable");
    let _ = fs::remove_file(&path);
    let corrupted = text.replacen("\"u_p2\":0", "\"u_p2\":bogus-", 1);
    assert_ne!(text, corrupted, "fixture assumed a u_p2 value starting 0.x");
    let err = ReplayTrace::parse(&corrupted).expect_err("corrupt cell must not parse");
    assert!(
        err.reason.contains("u_p2"),
        "error names the corrupt column: {err}"
    );
}
