//! Plain-text rendering of experiment results: aligned tables and CSV.
//!
//! The figure-regeneration binaries in `eucon-bench` print both formats so
//! results can be eyeballed in a terminal or piped into a plotting tool.

/// Renders rows as CSV with a header line.
///
/// # Example
///
/// ```
/// let csv = eucon_core::render::csv(
///     &["etf", "mean"],
///     &[vec!["0.5".into(), "0.828".into()]],
/// );
/// assert_eq!(csv, "etf,mean\n0.5,0.828\n");
/// ```
pub fn csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&headers.join(","));
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Renders rows as an aligned plain-text table.
///
/// # Example
///
/// ```
/// let t = eucon_core::render::table(&["a", "bb"], &[vec!["1".into(), "2".into()]]);
/// assert!(t.contains("a | bb"));
/// ```
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
            .collect::<Vec<_>>()
            .join(" | ")
    };
    out.push_str(&fmt_row(headers.to_vec(), &widths));
    out.push('\n');
    out.push_str(
        &widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("-+-"),
    );
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.iter().map(String::as_str).collect(), &widths));
        out.push('\n');
    }
    out
}

/// Formats a float with 4 decimal places (the precision used in
/// EXPERIMENTS.md).
pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

/// Renders a crude ASCII time-series plot (one character column per
/// sample, `height` rows, y spanning `[0, 1]`) — enough to eyeball
/// convergence and oscillation in a terminal.
pub fn ascii_series(series: &[f64], height: usize) -> String {
    if series.is_empty() || height == 0 {
        return String::new();
    }
    let mut rows = vec![vec![b' '; series.len()]; height];
    for (x, &v) in series.iter().enumerate() {
        let clamped = v.clamp(0.0, 1.0);
        let y = ((1.0 - clamped) * (height - 1) as f64).round() as usize;
        rows[y][x] = b'*';
    }
    let mut out = String::new();
    for (i, row) in rows.iter().enumerate() {
        let label = 1.0 - i as f64 / (height - 1).max(1) as f64;
        out.push_str(&format!("{label:4.2} |"));
        out.push_str(std::str::from_utf8(row).expect("ascii"));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_shape() {
        let s = csv(
            &["x", "y"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        );
        assert_eq!(s.lines().count(), 3);
        assert!(s.starts_with("x,y\n"));
    }

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["etf", "mean utilization"],
            &[vec!["0.5".into(), "0.83".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    fn empty_rows_ok() {
        assert_eq!(csv(&["a"], &[]), "a\n");
        assert_eq!(table(&["a"], &[]).lines().count(), 2);
    }

    #[test]
    fn f4_precision() {
        assert_eq!(f4(0.82843), "0.8284");
    }

    #[test]
    fn ascii_series_plots_extremes() {
        let plot = ascii_series(&[0.0, 1.0], 3);
        let lines: Vec<&str> = plot.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains('*'), "top row holds the 1.0 sample");
        assert!(lines[2].contains('*'), "bottom row holds the 0.0 sample");
        assert_eq!(ascii_series(&[], 3), "");
    }
}
