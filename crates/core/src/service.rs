//! The multi-tenant control service: many independent plants behind one
//! long-running daemon.
//!
//! A *tenant* is one complete EUCON deployment — task set, simulator,
//! controller, telemetry registry and its own poll-engine lane fabric —
//! described by a [`TenantSpec`] and attached to a [`ControlService`].
//! The service steps every healthy tenant once per service period, fully
//! isolated from the others: tenants share nothing but the scheduler
//! thread, so one tenant's partitioned lanes or controller faults can
//! never perturb another tenant's trace (pinned by the isolation test in
//! `tests/service_isolation.rs`).
//!
//! ## Tenancy health: quarantine → stale-hold → evict
//!
//! The service watches each tenant's lane health through the distributed
//! runtime's stale counter.  A period in which *every* lane reused its
//! hold value is a *silent* period; consecutive silent periods escalate:
//!
//! ```text
//! Healthy ──(quarantine_after silent)──▶ Quarantined ──(evict_after)──▶ Evicted
//!    ▲                                       │
//!    └──────────(any lane delivers)──────────┘  (Recovered)
//! ```
//!
//! Quarantined tenants keep stepping on stale-hold rates (the EUCON
//! degradation story: the last commanded rates stay in force).  Evicted
//! tenants stop consuming service periods; their accumulated result
//! stays retrievable via [`ControlService::detach`].  Every transition
//! is a typed [`TenantEvent`].
//!
//! ## The daemon
//!
//! [`ControlService::spawn`] promotes the service into a daemon thread
//! owning a loopback admin listener with a line-oriented protocol
//! (`PING` / `ATTACH` / `DETACH` / `STATS` / `TENANTS` / `EVENTS` /
//! `SHUTDOWN`), one request per line, responses as zero or more
//! `DATA ...` lines closed by `OK ...` or `ERR ...`.  [`ServiceClient`]
//! is the matching blocking client.  See DESIGN.md §17.

use std::fmt;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use eucon_control::MpcConfig;
use eucon_math::Vector;
use eucon_net::TransportStats;
use eucon_sim::{FaultPlan, SimConfig};
use eucon_tasks::{workloads, TaskSet};

use crate::plant::PlantFactory;
use crate::{ControllerSpec, CoreError, DistributedLoop, LaneModel, NetConfig, RunResult};

/// Identifies one tenant inside a [`ControlService`].
///
/// Ids are dense attach-order indices and are never reused, so a stale
/// id held by an admin client can never alias a newer tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(usize);

impl TenantId {
    /// The tenant's slot index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A tenant's position in the quarantine → evict state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantHealth {
    /// Lanes are delivering; the tenant steps normally.
    Healthy,
    /// Every lane has been silent for at least `quarantine_after`
    /// consecutive periods; the tenant still steps, riding stale-hold.
    Quarantined,
    /// The silence outlasted `evict_after`; the tenant no longer steps.
    Evicted,
}

impl fmt::Display for TenantHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TenantHealth::Healthy => "healthy",
            TenantHealth::Quarantined => "quarantined",
            TenantHealth::Evicted => "evicted",
        })
    }
}

/// When lane silence escalates a tenant's health.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictionPolicy {
    /// Consecutive all-lanes-silent periods before quarantine.
    pub quarantine_after: u32,
    /// Consecutive all-lanes-silent periods before eviction (must be
    /// at least `quarantine_after` to be reachable).
    pub evict_after: u32,
}

impl Default for EvictionPolicy {
    fn default() -> Self {
        EvictionPolicy {
            quarantine_after: 3,
            evict_after: 10,
        }
    }
}

/// A typed record of one tenancy transition.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TenantEvent {
    /// A tenant joined the service.
    Attached {
        /// The new tenant.
        tenant: TenantId,
        /// Its admin-facing name.
        name: String,
    },
    /// Every lane went silent long enough to quarantine.
    Quarantined {
        /// The affected tenant.
        tenant: TenantId,
        /// The tenant's period count at the transition.
        period: usize,
    },
    /// A quarantined tenant's lanes delivered again.
    Recovered {
        /// The affected tenant.
        tenant: TenantId,
        /// The tenant's period count at the transition.
        period: usize,
    },
    /// The silence outlasted the policy; the tenant stopped stepping.
    Evicted {
        /// The affected tenant.
        tenant: TenantId,
        /// The tenant's period count at the transition.
        period: usize,
    },
    /// A tenant left the service (its report was handed out).
    Detached {
        /// The departed tenant.
        tenant: TenantId,
        /// The tenant's final period count.
        period: usize,
    },
}

/// Everything needed to stand up one tenant: the plant, the controller
/// and the lane configuration (poll-engine TCP lanes by default).
pub struct TenantSpec {
    name: String,
    set: TaskSet,
    sim: SimConfig,
    controller: ControllerSpec,
    set_points: Option<Vector>,
    faults: FaultPlan,
    net: NetConfig,
    plant: Option<Arc<dyn PlantFactory>>,
}

impl std::fmt::Debug for TenantSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TenantSpec")
            .field("name", &self.name)
            .field("controller", &self.controller)
            .field("plant", &self.plant.as_ref().map_or("sim", |p| p.label()))
            .finish_non_exhaustive()
    }
}

impl TenantSpec {
    /// A tenant named `name` controlling `set` over ideal poll-engine
    /// TCP lanes with a 5 ms receive window.
    pub fn new(name: impl Into<String>, set: TaskSet) -> Self {
        let mut net = NetConfig::tcp_poll();
        net.recv_timeout = Duration::from_millis(5);
        TenantSpec {
            name: name.into(),
            set,
            sim: SimConfig::default(),
            controller: ControllerSpec::Eucon(MpcConfig::simple()),
            set_points: None,
            faults: FaultPlan::none(),
            net,
            plant: None,
        }
    }

    /// Chooses the tenant's plant backend (default: the `eucon-sim`
    /// simulator).
    pub fn plant(mut self, factory: impl PlantFactory + 'static) -> Self {
        self.plant = Some(Arc::new(factory));
        self
    }

    /// Sets the simulated-plant configuration.
    pub fn sim_config(mut self, sim: SimConfig) -> Self {
        self.sim = sim;
        self
    }

    /// Sets the controller.
    pub fn controller(mut self, spec: ControllerSpec) -> Self {
        self.controller = spec;
        self
    }

    /// Overrides the utilization set points.
    pub fn set_points(mut self, b: Vector) -> Self {
        self.set_points = b.into();
        self
    }

    /// Sets the tenant's fault plan (partition windows silence its own
    /// lanes — and only its own).
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Applies delay/loss to the tenant's report lanes.
    pub fn report_lanes(mut self, model: LaneModel) -> Self {
        self.net.report_lanes = model;
        self
    }

    /// Applies delay/loss to the tenant's command lanes.
    pub fn command_lanes(mut self, model: LaneModel) -> Self {
        self.net.command_lanes = model;
        self
    }

    /// Overrides the per-period receive window of the tenant's lanes.
    pub fn recv_timeout(mut self, window: Duration) -> Self {
        self.net.recv_timeout = window;
        self
    }

    /// Replaces the whole transport configuration.
    pub fn net(mut self, net: NetConfig) -> Self {
        self.net = net;
        self
    }

    fn build(self) -> Result<(String, DistributedLoop), CoreError> {
        let mut b = DistributedLoop::builder(self.set)
            .sim_config(self.sim)
            .controller(self.controller)
            .faults(self.faults)
            .net(self.net);
        if let Some(points) = self.set_points {
            b = b.set_points(points);
        }
        if let Some(factory) = self.plant {
            b = b.plant(factory);
        }
        Ok((self.name, b.build()?))
    }
}

/// One attached tenant: its loop plus the health bookkeeping.
struct Tenant {
    name: String,
    dloop: DistributedLoop,
    health: TenantHealth,
    /// Consecutive periods in which every lane reused its hold value.
    silent_streak: u32,
}

/// The final accounting handed out when a tenant detaches.
#[derive(Debug)]
pub struct TenantReport {
    /// The tenant's id.
    pub tenant: TenantId,
    /// The tenant's admin-facing name.
    pub name: String,
    /// Sampling periods the tenant executed.
    pub periods: usize,
    /// Worst per-processor deviation of the tail-window mean
    /// utilization from the set point, over the trace's last quarter
    /// (`NaN` for an empty trace) — the convergence gate.
    pub worst_tail_err: f64,
    /// Health at detach time.
    pub health: TenantHealth,
    /// Aggregate lane counters.
    pub transport: TransportStats,
    /// The full run result (trace, telemetry, fault summary).
    pub result: RunResult,
}

/// Worst per-processor deviation of the tail-window mean utilization
/// from the set point (the convergence criterion of §7, over the last
/// quarter of the trace).
fn worst_tail_error(result: &RunResult) -> f64 {
    let steps = result.trace.steps();
    if steps.is_empty() {
        return f64::NAN;
    }
    let start = steps.len() - (steps.len() / 4).max(1);
    let tail = &steps[start..];
    let mut worst = 0.0f64;
    for (p, &b) in result.set_points.iter().enumerate() {
        let mean = tail.iter().map(|s| s.utilization[p]).sum::<f64>() / tail.len() as f64;
        worst = worst.max((mean - b).abs());
    }
    worst
}

/// Many independent EUCON plants behind one scheduler: attach tenants,
/// step them together, watch their health, detach for the final report.
///
/// # Example
///
/// ```no_run
/// use eucon_core::service::{ControlService, EvictionPolicy, TenantSpec};
/// use eucon_sim::SimConfig;
/// use eucon_tasks::workloads;
///
/// # fn main() -> Result<(), eucon_core::CoreError> {
/// let mut svc = ControlService::new(EvictionPolicy::default());
/// let a = svc.attach(
///     TenantSpec::new("alpha", workloads::simple())
///         .sim_config(SimConfig::constant_etf(0.5)),
/// )?;
/// svc.run(100);
/// let report = svc.detach(a)?;
/// assert!(report.worst_tail_err < 0.05);
/// # Ok(())
/// # }
/// ```
pub struct ControlService {
    tenants: Vec<Option<Tenant>>,
    policy: EvictionPolicy,
    events: Vec<TenantEvent>,
}

impl ControlService {
    /// An empty service with the given eviction policy.
    pub fn new(policy: EvictionPolicy) -> Self {
        ControlService {
            tenants: Vec::new(),
            policy,
            events: Vec::new(),
        }
    }

    /// Builds and attaches a tenant, connecting its lane fabric.
    ///
    /// # Errors
    ///
    /// Everything the tenant's loop builder rejects (bad lane
    /// parameters, socket failures, invalid workloads).
    pub fn attach(&mut self, spec: TenantSpec) -> Result<TenantId, CoreError> {
        let (name, dloop) = spec.build()?;
        let tenant = TenantId(self.tenants.len());
        self.events.push(TenantEvent::Attached {
            tenant,
            name: name.clone(),
        });
        self.tenants.push(Some(Tenant {
            name,
            dloop,
            health: TenantHealth::Healthy,
            silent_streak: 0,
        }));
        Ok(tenant)
    }

    /// Removes a tenant and returns its final report.
    ///
    /// # Errors
    ///
    /// [`CoreError::Config`] for an unknown or already-detached id.
    pub fn detach(&mut self, id: TenantId) -> Result<TenantReport, CoreError> {
        let tenant = self
            .tenants
            .get_mut(id.0)
            .and_then(Option::take)
            .ok_or_else(|| CoreError::Config(format!("unknown tenant {id}")))?;
        let periods = tenant.dloop.periods_elapsed();
        self.events.push(TenantEvent::Detached {
            tenant: id,
            period: periods,
        });
        let transport = tenant.dloop.transport_stats();
        let result = tenant.dloop.into_result();
        Ok(TenantReport {
            tenant: id,
            name: tenant.name,
            periods,
            worst_tail_err: worst_tail_error(&result),
            health: tenant.health,
            transport,
            result,
        })
    }

    /// Steps every non-evicted tenant one sampling period and updates
    /// the health state machine from the lanes' stale counters.
    pub fn step_all(&mut self) {
        let policy = self.policy;
        let events = &mut self.events;
        for (i, slot) in self.tenants.iter_mut().enumerate() {
            let Some(t) = slot else { continue };
            if t.health == TenantHealth::Evicted {
                continue;
            }
            t.dloop.step();
            let lanes = t.dloop.set_points().len() as u64;
            let silent = t
                .dloop
                .net
                .as_ref()
                .map(|n| lanes > 0 && n.stale_lanes() == lanes)
                .unwrap_or(false);
            let period = t.dloop.periods_elapsed();
            if silent {
                t.silent_streak += 1;
            } else {
                if t.health == TenantHealth::Quarantined {
                    t.health = TenantHealth::Healthy;
                    events.push(TenantEvent::Recovered {
                        tenant: TenantId(i),
                        period,
                    });
                }
                t.silent_streak = 0;
            }
            match t.health {
                TenantHealth::Healthy if t.silent_streak >= policy.quarantine_after => {
                    t.health = TenantHealth::Quarantined;
                    events.push(TenantEvent::Quarantined {
                        tenant: TenantId(i),
                        period,
                    });
                }
                TenantHealth::Quarantined if t.silent_streak >= policy.evict_after => {
                    t.health = TenantHealth::Evicted;
                    events.push(TenantEvent::Evicted {
                        tenant: TenantId(i),
                        period,
                    });
                }
                _ => {}
            }
        }
    }

    /// Runs `periods` service periods (each stepping every non-evicted
    /// tenant once).
    pub fn run(&mut self, periods: usize) {
        for _ in 0..periods {
            self.step_all();
        }
    }

    /// A tenant's current health, or `None` after detach / for unknown
    /// ids.
    pub fn health(&self, id: TenantId) -> Option<TenantHealth> {
        self.tenants.get(id.0)?.as_ref().map(|t| t.health)
    }

    /// A tenant's name.
    pub fn name(&self, id: TenantId) -> Option<&str> {
        self.tenants.get(id.0)?.as_ref().map(|t| t.name.as_str())
    }

    /// Sampling periods a tenant has executed.
    pub fn periods(&self, id: TenantId) -> Option<usize> {
        self.tenants
            .get(id.0)?
            .as_ref()
            .map(|t| t.dloop.periods_elapsed())
    }

    /// A tenant's aggregate lane counters.
    pub fn transport_stats(&self, id: TenantId) -> Option<TransportStats> {
        self.tenants
            .get(id.0)?
            .as_ref()
            .map(|t| t.dloop.transport_stats())
    }

    /// Ids of every attached (not yet detached) tenant.
    pub fn tenant_ids(&self) -> Vec<TenantId> {
        self.tenants
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_some())
            .map(|(i, _)| TenantId(i))
            .collect()
    }

    /// Number of tenants that still step (attached and not evicted).
    pub fn active_tenants(&self) -> usize {
        self.tenants
            .iter()
            .flatten()
            .filter(|t| t.health != TenantHealth::Evicted)
            .count()
    }

    /// Every tenancy transition so far, in order.
    pub fn events(&self) -> &[TenantEvent] {
        &self.events
    }

    /// Tears the service down: detaches every remaining tenant and
    /// returns the event log plus their final reports.
    pub fn into_summary(mut self) -> ServiceSummary {
        let ids = self.tenant_ids();
        let mut reports = Vec::with_capacity(ids.len());
        for id in ids {
            if let Ok(report) = self.detach(id) {
                reports.push(report);
            }
        }
        ServiceSummary {
            events: self.events,
            reports,
        }
    }

    /// Spawns the service as a daemon thread with a loopback admin
    /// listener (see the module docs for the protocol) and returns the
    /// controlling handle.
    ///
    /// The daemon steps all tenants continuously while any are active
    /// and parks briefly when idle; it exits on `SHUTDOWN` or
    /// [`ServiceHandle::shutdown`].
    ///
    /// # Errors
    ///
    /// Propagates `std::io::Error` from binding the admin listener.
    pub fn spawn(policy: EvictionPolicy) -> std::io::Result<ServiceHandle> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        // The service is built inside the thread: loops hold non-Send
        // solver state, so they must live and die on the daemon thread.
        let handle = std::thread::Builder::new()
            .name("eucon-service".into())
            .spawn(move || daemon_loop(ControlService::new(policy), listener, &flag))?;
        Ok(ServiceHandle { addr, stop, handle })
    }
}

impl fmt::Debug for ControlService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ControlService")
            .field("tenants", &self.tenant_ids().len())
            .field("active", &self.active_tenants())
            .field("policy", &self.policy)
            .finish()
    }
}

/// What a daemon hands back when it exits: the tenancy event log plus
/// the final report of every tenant still attached at shutdown.
#[derive(Debug, Default)]
pub struct ServiceSummary {
    /// Every tenancy transition, in order.
    pub events: Vec<TenantEvent>,
    /// Final reports of the tenants detached at shutdown.
    pub reports: Vec<TenantReport>,
}

/// Controls a daemon started by [`ControlService::spawn`].
#[derive(Debug)]
pub struct ServiceHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<ServiceSummary>,
}

impl ServiceHandle {
    /// The admin listener's address (connect a [`ServiceClient`] here).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the daemon and returns its final summary.
    pub fn shutdown(self) -> ServiceSummary {
        self.stop.store(true, Ordering::Relaxed);
        self.handle.join().unwrap_or_default()
    }

    /// Waits for the daemon to exit on its own (an admin `SHUTDOWN`)
    /// and returns its final summary.
    pub fn join(self) -> ServiceSummary {
        self.handle.join().unwrap_or_default()
    }
}

/// One admin connection's buffers.
struct Conn {
    stream: TcpStream,
    buf: String,
    closed: bool,
}

/// The daemon's event loop: accept admin connections, serve complete
/// command lines, step the tenants.
fn daemon_loop(
    mut service: ControlService,
    listener: TcpListener,
    stop: &AtomicBool,
) -> ServiceSummary {
    let mut conns: Vec<Conn> = Vec::new();
    let mut chunk = [0u8; 1024];
    'outer: while !stop.load(Ordering::Relaxed) {
        while let Ok((stream, _)) = listener.accept() {
            if stream.set_nonblocking(true).is_ok() {
                conns.push(Conn {
                    stream,
                    buf: String::new(),
                    closed: false,
                });
            }
        }
        for conn in &mut conns {
            loop {
                match conn.stream.read(&mut chunk) {
                    Ok(0) => {
                        conn.closed = true;
                        break;
                    }
                    Ok(n) => conn.buf.push_str(&String::from_utf8_lossy(&chunk[..n])),
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(_) => {
                        conn.closed = true;
                        break;
                    }
                }
            }
            while let Some(pos) = conn.buf.find('\n') {
                let line: String = conn.buf.drain(..=pos).collect();
                let (response, shutdown) = handle_command(&mut service, line.trim());
                if !write_response(&mut conn.stream, &response) {
                    conn.closed = true;
                }
                if shutdown {
                    break 'outer;
                }
            }
        }
        conns.retain(|c| !c.closed);
        if service.active_tenants() > 0 {
            service.step_all();
        } else {
            std::thread::sleep(Duration::from_micros(500));
        }
    }
    service.into_summary()
}

/// Writes a response to a nonblocking admin socket with a bounded retry.
fn write_response(stream: &mut TcpStream, response: &str) -> bool {
    let bytes = response.as_bytes();
    let deadline = Instant::now() + Duration::from_secs(1);
    let mut written = 0;
    while written < bytes.len() {
        match stream.write(&bytes[written..]) {
            Ok(0) => return false,
            Ok(n) => written += n,
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    return false;
                }
                std::thread::yield_now();
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
    true
}

/// Executes one admin command line, returning the full response text
/// (zero or more `DATA` lines plus the `OK`/`ERR` terminator) and
/// whether the daemon should shut down.
fn handle_command(service: &mut ControlService, line: &str) -> (String, bool) {
    let mut parts = line.split_whitespace();
    let verb = parts.next().unwrap_or("").to_ascii_uppercase();
    let args: Vec<&str> = parts.collect();
    match verb.as_str() {
        "PING" => ("OK pong\n".into(), false),
        "SHUTDOWN" => ("OK bye\n".into(), true),
        "ATTACH" => match parse_attach(&args)
            .and_then(|spec| service.attach(spec).map_err(AttachError::Other))
        {
            Ok(id) => (format!("OK {id}\n"), false),
            Err(e) => (format!("ERR {e}\n"), false),
        },
        "DETACH" => match parse_tenant_id(&args).and_then(|id| service.detach(id)) {
            Ok(report) => (
                format!(
                    "DATA name={} periods={} worst_err={:.4} health={}\nOK detached\n",
                    report.name, report.periods, report.worst_tail_err, report.health
                ),
                false,
            ),
            Err(e) => (format!("ERR {e}\n"), false),
        },
        "STATS" => match parse_tenant_id(&args) {
            Ok(id) => match (
                service.name(id),
                service.periods(id),
                service.health(id),
                service.transport_stats(id),
            ) {
                (Some(name), Some(periods), Some(health), Some(t)) => (
                    format!(
                        "DATA name={name} periods={periods} health={health} \
                         sent={} received={} dropped={} decode_errors={}\nOK\n",
                        t.sent, t.received, t.dropped, t.decode_errors
                    ),
                    false,
                ),
                _ => (format!("ERR unknown tenant {id}\n"), false),
            },
            Err(e) => (format!("ERR {e}\n"), false),
        },
        "TENANTS" => {
            let mut out = String::new();
            for id in service.tenant_ids() {
                if let (Some(name), Some(periods), Some(health)) =
                    (service.name(id), service.periods(id), service.health(id))
                {
                    out.push_str(&format!("DATA {id} {name} {health} {periods}\n"));
                }
            }
            out.push_str("OK\n");
            (out, false)
        }
        "EVENTS" => {
            let mut out = String::new();
            for e in service.events() {
                out.push_str(&format!("DATA {e:?}\n"));
            }
            out.push_str("OK\n");
            (out, false)
        }
        "" => ("ERR empty command\n".into(), false),
        other => (format!("ERR unknown command {other}\n"), false),
    }
}

/// Parses `DETACH <id>` / `STATS <id>` arguments.
fn parse_tenant_id(args: &[&str]) -> Result<TenantId, CoreError> {
    args.first()
        .and_then(|s| s.parse::<usize>().ok())
        .map(TenantId)
        .ok_or_else(|| CoreError::Config("expected a numeric tenant id".into()))
}

/// Why an `ATTACH` command was refused, with a stable machine-readable
/// first token on the wire (`ERR unknown-workload ...` vs a plain
/// `ERR <config message>`), so admin tooling can branch on the cause
/// without parsing free-form prose.
enum AttachError {
    /// The workload name is not in the built-in catalog.
    UnknownWorkload(String),
    /// Any other parse or attach failure.
    Other(CoreError),
}

impl fmt::Display for AttachError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttachError::UnknownWorkload(w) => {
                write!(f, "unknown-workload {w} (expected simple|medium)")
            }
            AttachError::Other(e) => write!(f, "{e}"),
        }
    }
}

/// Parses `ATTACH <name> <simple|medium> <etf> [loss=P] [delay=D]
/// [seed=N]` into a [`TenantSpec`].
fn parse_attach(args: &[&str]) -> Result<TenantSpec, AttachError> {
    let bad = |m: &str| AttachError::Other(CoreError::Config(m.to_string()));
    let name = *args.first().ok_or_else(|| bad("ATTACH needs a name"))?;
    let workload = *args.get(1).ok_or_else(|| bad("ATTACH needs a workload"))?;
    let etf: f64 = args
        .get(2)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("ATTACH needs a numeric etf"))?;
    let (set, mpc) = match workload {
        "simple" => (workloads::simple(), MpcConfig::simple()),
        "medium" => (workloads::medium(), MpcConfig::medium()),
        other => return Err(AttachError::UnknownWorkload(other.to_string())),
    };
    let mut loss = 0.0f64;
    let mut delay = 0usize;
    let mut seed = 0u64;
    for opt in &args[3..] {
        let (key, value) = opt
            .split_once('=')
            .ok_or_else(|| bad(&format!("malformed option {opt}")))?;
        match key {
            "loss" => loss = value.parse().map_err(|_| bad("bad loss value"))?,
            "delay" => delay = value.parse().map_err(|_| bad("bad delay value"))?,
            "seed" => seed = value.parse().map_err(|_| bad("bad seed value"))?,
            other => return Err(bad(&format!("unknown option {other}"))),
        }
    }
    if !(0.0..1.0).contains(&loss) {
        return Err(bad("loss must be in [0, 1)"));
    }
    let mut spec = TenantSpec::new(name, set)
        .sim_config(SimConfig::constant_etf(etf).seed(seed))
        .controller(ControllerSpec::Eucon(mpc));
    if loss > 0.0 || delay > 0 {
        spec = spec.report_lanes(LaneModel {
            report_delay: delay,
            loss_probability: loss,
            seed,
        });
    }
    Ok(spec)
}

/// A parsed admin-protocol response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdminResponse {
    /// Whether the terminator was `OK` (vs `ERR`).
    pub ok: bool,
    /// The text after the terminator keyword.
    pub status: String,
    /// The payload of every `DATA` line, in order.
    pub data: Vec<String>,
}

/// Blocking client for the daemon's line-oriented admin protocol.
#[derive(Debug)]
pub struct ServiceClient {
    stream: TcpStream,
    buf: String,
}

impl ServiceClient {
    /// Connects to a daemon's admin listener with a 10 s read timeout.
    ///
    /// # Errors
    ///
    /// Propagates connection and socket-option failures.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        stream.set_nodelay(true)?;
        Ok(ServiceClient {
            stream,
            buf: String::new(),
        })
    }

    /// Sends one command line and reads the response through its
    /// `OK`/`ERR` terminator.
    ///
    /// # Errors
    ///
    /// I/O failures, the read timeout, or the daemon closing the
    /// connection mid-response.
    pub fn request(&mut self, line: &str) -> std::io::Result<AdminResponse> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        let mut data = Vec::new();
        loop {
            let line = self.read_line()?;
            if let Some(rest) = line.strip_prefix("DATA") {
                data.push(rest.trim_start().to_string());
            } else if let Some(rest) = line.strip_prefix("OK") {
                return Ok(AdminResponse {
                    ok: true,
                    status: rest.trim().to_string(),
                    data,
                });
            } else if let Some(rest) = line.strip_prefix("ERR") {
                return Ok(AdminResponse {
                    ok: false,
                    status: rest.trim().to_string(),
                    data,
                });
            }
        }
    }

    fn read_line(&mut self) -> std::io::Result<String> {
        loop {
            if let Some(pos) = self.buf.find('\n') {
                let line: String = self.buf.drain(..=pos).collect();
                return Ok(line.trim_end().to_string());
            }
            let mut chunk = [0u8; 1024];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "service closed the admin connection",
                ));
            }
            self.buf.push_str(&String::from_utf8_lossy(&chunk[..n]));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tenant(name: &str, etf: f64) -> TenantSpec {
        TenantSpec::new(name, workloads::simple())
            .sim_config(SimConfig::constant_etf(etf))
            .controller(ControllerSpec::Eucon(MpcConfig::simple()))
            .recv_timeout(Duration::from_millis(50))
    }

    #[test]
    fn attach_step_detach_roundtrip() {
        let mut svc = ControlService::new(EvictionPolicy::default());
        let a = svc.attach(tenant("alpha", 0.5)).unwrap();
        let b = svc.attach(tenant("beta", 0.8)).unwrap();
        assert_eq!(svc.active_tenants(), 2);
        svc.run(60);
        assert_eq!(svc.periods(a), Some(60));
        assert_eq!(svc.health(b), Some(TenantHealth::Healthy));
        let ra = svc.detach(a).unwrap();
        assert_eq!(ra.name, "alpha");
        assert_eq!(ra.periods, 60);
        assert!(ra.worst_tail_err < 0.05, "converged: {}", ra.worst_tail_err);
        assert_eq!(ra.transport.decode_errors, 0);
        assert!(svc.detach(a).is_err(), "double detach must fail");
        let rb = svc.detach(b).unwrap();
        assert!(rb.worst_tail_err < 0.05);
        // Attached ×2 then Detached ×2, in order.
        let attaches = svc
            .events()
            .iter()
            .filter(|e| matches!(e, TenantEvent::Attached { .. }))
            .count();
        assert_eq!(attaches, 2);
    }

    #[test]
    fn silence_escalates_quarantine_then_evict() {
        let mut svc = ControlService::new(EvictionPolicy {
            quarantine_after: 3,
            evict_after: 6,
        });
        // Both lanes partitioned from period 10 on: total silence.
        let bad = tenant("doomed", 0.5).faults(
            FaultPlan::none()
                .partition(0, 10, 400)
                .partition(1, 10, 400),
        );
        let good = tenant("steady", 0.5);
        let d = svc.attach(bad).unwrap();
        let g = svc.attach(good).unwrap();
        svc.run(40);
        assert_eq!(svc.health(d), Some(TenantHealth::Evicted));
        assert_eq!(svc.health(g), Some(TenantHealth::Healthy));
        // The evicted tenant stopped stepping; the healthy one did not.
        let frozen = svc.periods(d).unwrap();
        assert!(frozen < 40, "eviction halts stepping (got {frozen})");
        assert_eq!(svc.periods(g), Some(40));
        svc.run(10);
        assert_eq!(svc.periods(d), Some(frozen), "evicted tenants stay frozen");
        // Quarantined before evicted, both for the doomed tenant only.
        let transitions: Vec<&TenantEvent> = svc
            .events()
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    TenantEvent::Quarantined { .. } | TenantEvent::Evicted { .. }
                )
            })
            .collect();
        assert!(
            matches!(
                transitions.as_slice(),
                [
                    TenantEvent::Quarantined { tenant: q, .. },
                    TenantEvent::Evicted { tenant: e, .. },
                ] if *q == d && *e == d
            ),
            "unexpected transition sequence: {transitions:?}"
        );
        let report = svc.detach(d).unwrap();
        assert_eq!(report.health, TenantHealth::Evicted);
    }

    #[test]
    fn recovery_clears_quarantine() {
        let mut svc = ControlService::new(EvictionPolicy {
            quarantine_after: 2,
            evict_after: 50,
        });
        // Silence for 10 periods, then the lanes heal.
        let spec =
            tenant("wobbly", 0.5).faults(FaultPlan::none().partition(0, 5, 15).partition(1, 5, 15));
        let id = svc.attach(spec).unwrap();
        svc.run(30);
        assert_eq!(svc.health(id), Some(TenantHealth::Healthy));
        assert!(svc
            .events()
            .iter()
            .any(|e| matches!(e, TenantEvent::Recovered { tenant, .. } if *tenant == id)));
    }

    #[test]
    fn daemon_serves_the_admin_protocol() {
        let handle = ControlService::spawn(EvictionPolicy::default()).unwrap();
        let mut client = ServiceClient::connect(handle.addr()).unwrap();
        assert_eq!(client.request("PING").unwrap().status, "pong");
        let resp = client.request("ATTACH alpha simple 0.5 seed=3").unwrap();
        assert!(resp.ok, "{resp:?}");
        let id: usize = resp.status.parse().unwrap();
        // Wait until the tenant has made progress.
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let stats = client.request(&format!("STATS {id}")).unwrap();
            assert!(stats.ok);
            let line = &stats.data[0];
            let periods: usize = line
                .split_whitespace()
                .find_map(|kv| kv.strip_prefix("periods="))
                .unwrap()
                .parse()
                .unwrap();
            if periods >= 50 {
                assert!(line.contains("health=healthy"), "{line}");
                break;
            }
            assert!(Instant::now() < deadline, "tenant made no progress");
            std::thread::sleep(Duration::from_millis(5));
        }
        let resp = client.request("TENANTS").unwrap();
        assert_eq!(resp.data.len(), 1);
        let resp = client.request(&format!("DETACH {id}")).unwrap();
        assert!(resp.ok, "{resp:?}");
        assert!(resp.data[0].contains("name=alpha"), "{:?}", resp.data);
        assert!(client.request("BOGUS").unwrap().status.contains("unknown"));
        let summary = handle.shutdown();
        assert!(summary
            .events
            .iter()
            .any(|e| matches!(e, TenantEvent::Detached { .. })));
        assert!(summary.reports.is_empty(), "tenant already detached");
    }
}
