//! The single controller-construction path of [`ClosedLoopBuilder`].
//!
//! [`ControllerFactory`] is the one way controllers reach the loop:
//! everything that can produce a controller for a `(task set, set
//! points)` pair — a [`ControllerSpec`], a prebuilt controller, a
//! closure — goes through [`ClosedLoopBuilder::controller`].
//!
//! [`ClosedLoopBuilder`]: crate::ClosedLoopBuilder
//! [`ClosedLoopBuilder::controller`]: crate::ClosedLoopBuilder::controller

use eucon_control::{ControlError, RateController};
use eucon_math::Vector;
use eucon_tasks::TaskSet;

use crate::ControllerSpec;

/// Anything that can instantiate a [`RateController`] for a task set and
/// its utilization set points.
///
/// Implemented by [`ControllerSpec`] (the built-in controllers), by
/// `Box<dyn RateController>` (a prebuilt controller is a factory that
/// ignores its inputs) and by closures via [`factory_fn`].  Construction
/// consumes the factory (`self: Box<Self>`) so prebuilt controllers move
/// into the loop without a clone.
///
/// # Example
///
/// ```
/// use eucon_core::{factory_fn, ClosedLoop, ControllerFactory};
/// use eucon_control::{MpcConfig, MpcController, RateController};
/// use eucon_tasks::workloads;
///
/// # fn main() -> Result<(), eucon_core::CoreError> {
/// // A closure-backed factory: build whatever controller you like from
/// // the task set and set points the loop settled on.
/// let cl = ClosedLoop::builder(workloads::simple())
///     .controller(factory_fn(|set, b| {
///         let mpc = MpcController::new(set, b.clone(), MpcConfig::simple())?;
///         Ok(Box::new(mpc) as Box<dyn RateController>)
///     }))
///     .build()?;
/// assert_eq!(cl.controller_name(), "EUCON");
/// # Ok(())
/// # }
/// ```
pub trait ControllerFactory {
    /// Consumes the factory and builds the controller.
    ///
    /// # Errors
    ///
    /// Propagates controller-construction failures.
    fn build_controller(
        self: Box<Self>,
        set: &TaskSet,
        set_points: &Vector,
    ) -> Result<Box<dyn RateController>, ControlError>;

    /// Short label for builder diagnostics (`Debug` output); not
    /// necessarily the built controller's [`RateController::name`].
    fn label(&self) -> &str {
        "custom"
    }
}

impl ControllerFactory for ControllerSpec {
    fn build_controller(
        self: Box<Self>,
        set: &TaskSet,
        set_points: &Vector,
    ) -> Result<Box<dyn RateController>, ControlError> {
        self.build(set, set_points)
    }

    fn label(&self) -> &str {
        match *self {
            ControllerSpec::Eucon(_) => "EUCON",
            ControllerSpec::Open => "OPEN",
            ControllerSpec::Pid { .. } => "PID",
            ControllerSpec::Decentralized(_) => "DEUCON",
            ControllerSpec::Sharded { .. } => "SHARD-EUCON",
            ControllerSpec::SupervisedEucon { .. } => "SUP-EUCON",
        }
    }
}

/// A prebuilt controller is a factory that ignores the task set and set
/// points.
impl ControllerFactory for Box<dyn RateController> {
    fn build_controller(
        self: Box<Self>,
        _set: &TaskSet,
        _set_points: &Vector,
    ) -> Result<Box<dyn RateController>, ControlError> {
        Ok(*self)
    }
}

/// Wraps a closure as a [`ControllerFactory`].
///
/// A dedicated adapter (rather than a blanket `impl` for `FnOnce`) keeps
/// the trait implementable for concrete types like [`ControllerSpec`]
/// without coherence conflicts.
pub fn factory_fn<F>(f: F) -> impl ControllerFactory
where
    F: FnOnce(&TaskSet, &Vector) -> Result<Box<dyn RateController>, ControlError>,
{
    FnFactory(f)
}

struct FnFactory<F>(F);

impl<F> ControllerFactory for FnFactory<F>
where
    F: FnOnce(&TaskSet, &Vector) -> Result<Box<dyn RateController>, ControlError>,
{
    fn build_controller(
        self: Box<Self>,
        set: &TaskSet,
        set_points: &Vector,
    ) -> Result<Box<dyn RateController>, ControlError> {
        (self.0)(set, set_points)
    }

    fn label(&self) -> &str {
        "closure"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eucon_control::{MpcConfig, OpenLoop};
    use eucon_tasks::{rms_set_points, workloads};

    #[test]
    fn spec_factory_builds_and_labels() {
        let set = workloads::simple();
        let b = rms_set_points(&set);
        let spec = ControllerSpec::Eucon(MpcConfig::simple());
        assert_eq!(spec.label(), "EUCON");
        let ctrl = Box::new(spec).build_controller(&set, &b).unwrap();
        assert_eq!(ctrl.name(), "EUCON");
        assert_eq!(ControllerSpec::Open.label(), "OPEN");
        assert_eq!(ControllerSpec::Pid { kp: 1.0, ki: 0.1 }.label(), "PID");
    }

    #[test]
    fn prebuilt_controller_is_a_factory() {
        let set = workloads::simple();
        let b = rms_set_points(&set);
        let prebuilt: Box<dyn RateController> = Box::new(OpenLoop::design(&set, &b).unwrap());
        assert_eq!(prebuilt.label(), "custom");
        let ctrl = Box::new(prebuilt).build_controller(&set, &b).unwrap();
        assert_eq!(ctrl.name(), "OPEN");
    }

    #[test]
    fn closure_factory_sees_set_and_points() {
        let set = workloads::simple();
        let b = rms_set_points(&set);
        let f = factory_fn(|set: &TaskSet, b: &Vector| {
            assert_eq!(b.len(), set.num_processors());
            Ok(Box::new(OpenLoop::design(set, b)?) as Box<dyn RateController>)
        });
        assert_eq!(f.label(), "closure");
        let ctrl = Box::new(f).build_controller(&set, &b).unwrap();
        assert_eq!(ctrl.name(), "OPEN");
    }
}
