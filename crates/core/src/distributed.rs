//! Distributed mode: the closed loop split into a controller node and
//! `m` processor nodes exchanging frames over real transport lanes.
//!
//! The paper's architecture (§4) runs the utilization monitors and rate
//! modulators *on the controlled processors* and connects them to the
//! controller through per-processor TCP connections — the feedback
//! lanes.  [`DistributedLoop`] makes that split real: every sampling
//! period each processor node sends a [`Frame::UtilizationReport`] over
//! its lane, the controller node computes new rates and answers with one
//! [`Frame::RateCommand`] per lane, and the modulators merge whatever
//! arrived into the rates in force.
//!
//! Two backends ship (see `eucon-net`): bounded in-process channels —
//! the *ideal lane*, whose closed-loop traces are bit-identical to the
//! single-process [`ClosedLoop`] — and real loopback TCP with reconnect
//! and backpressure.  Network effects (per-lane delay and loss) compose
//! over either backend as [`DelayLoss`] middleware configured through
//! the same [`LaneModel`] the single-process loop uses.
//!
//! Lost or late frames never stall the loop: a lane that stays silent
//! past the receive window is marked stale, the controller reuses the
//! lane's last delivered utilization (zero before the first delivery,
//! exactly like [`LaneModel`] loss), and the watchdog is notified via
//! [`RateController::note_stale`] so a dead lane eventually trips the
//! same degraded mode as a dead monitor.
//!
//! See DESIGN.md §13 for the node topology, the frame format and the
//! backpressure/reconnect policy.
//!
//! [`Frame::UtilizationReport`]: eucon_net::Frame::UtilizationReport
//! [`Frame::RateCommand`]: eucon_net::Frame::RateCommand
//! [`RateController::note_stale`]: eucon_control::RateController::note_stale

use std::ops::{Deref, DerefMut};
use std::time::{Duration, Instant};

use eucon_math::Vector;
use eucon_net::{
    channel_pair, tcp_lane_fabric, tcp_pair, DelayLoss, DelayLossGate, Frame, FrameKind,
    LaneFabric, TcpConfig, Transport, TransportStats,
};
use eucon_sim::{FaultPlan, SimConfig};
use eucon_tasks::TaskSet;

use crate::admission::{AdmissionPolicy, ChurnPlan};
use crate::telemetry::{NetPeriod, TelemetrySink};
use crate::{ClosedLoop, ClosedLoopBuilder, ControllerFactory, CoreError, LaneModel, RunResult};

/// Which transport backend carries the feedback lanes.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum NetBackend {
    /// In-process bounded channels with drop-oldest backpressure — the
    /// ideal lane (bit-identical traces to the single-process loop).
    Channel {
        /// Frames each direction may queue before the oldest is evicted.
        capacity: usize,
    },
    /// Real loopback TCP over `std::net` (nonblocking, per-lane send
    /// timeouts, reconnect with exponential backoff plus jitter).
    Tcp(TcpConfig),
}

/// How the feedback lanes are driven.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum LaneEngine {
    /// One transport object per lane endpoint ([`eucon_net::tcp_pair`] /
    /// [`eucon_net::channel_pair`]), each with its own buffers and
    /// reconnect logic — the original per-lane runtime.
    #[default]
    Pair,
    /// Every lane multiplexed on one sweep-based readiness loop per node
    /// ([`eucon_net::PollEngine`]): zero-copy frame decode straight from
    /// the read buffer, allocation-free sends, no transport object or
    /// thread per lane.  Requires the TCP backend.
    Poll,
}

/// Transport configuration of a [`DistributedLoop`]: the backend plus
/// the network effects layered on each direction of every lane.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// The transport backend.
    pub backend: NetBackend,
    /// How the lanes are driven (per-lane transport pairs or one poll
    /// engine per node).
    pub engine: LaneEngine,
    /// Delay/loss applied to utilization reports (processor → controller).
    /// Lane `p` draws losses from `seed + p`, so lanes fail independently.
    pub report_lanes: LaneModel,
    /// Delay/loss applied to rate commands (controller → processor).
    pub command_lanes: LaneModel,
    /// How long each period's exchange waits for outstanding frames
    /// before declaring the silent lanes stale.  In-process channels
    /// deliver synchronously and want [`Duration::ZERO`]; TCP needs a
    /// small window for the kernel round trip.
    pub recv_timeout: Duration,
}

impl NetConfig {
    /// Ideal in-process lanes: bounded channels, no delay, no loss, no
    /// receive window (channel delivery is synchronous).
    pub fn channel() -> Self {
        NetConfig {
            backend: NetBackend::Channel { capacity: 4 },
            engine: LaneEngine::Pair,
            report_lanes: LaneModel::ideal(),
            command_lanes: LaneModel::ideal(),
            recv_timeout: Duration::ZERO,
        }
    }

    /// Loopback-TCP lanes with default tuning and a 2 ms receive window.
    pub fn tcp() -> Self {
        NetConfig {
            backend: NetBackend::Tcp(TcpConfig::default()),
            engine: LaneEngine::Pair,
            report_lanes: LaneModel::ideal(),
            command_lanes: LaneModel::ideal(),
            recv_timeout: Duration::from_millis(2),
        }
    }

    /// Loopback-TCP lanes multiplexed on the poll engine (one readiness
    /// sweep over every lane, zero-copy decode, allocation-free sends)
    /// with a 2 ms receive window.
    pub fn tcp_poll() -> Self {
        NetConfig {
            backend: NetBackend::Tcp(TcpConfig::default()),
            engine: LaneEngine::Poll,
            report_lanes: LaneModel::ideal(),
            command_lanes: LaneModel::ideal(),
            recv_timeout: Duration::from_millis(2),
        }
    }

    /// Replaces the report-lane delay/loss model.
    pub fn report_lanes(mut self, model: LaneModel) -> Self {
        self.report_lanes = model;
        self
    }

    /// Replaces the command-lane delay/loss model.
    pub fn command_lanes(mut self, model: LaneModel) -> Self {
        self.command_lanes = model;
        self
    }

    /// Overrides the per-period receive window.
    pub fn recv_timeout(mut self, window: Duration) -> Self {
        self.recv_timeout = window;
        self
    }
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig::channel()
    }
}

/// Layers the configured delay/loss middleware over a lane endpoint
/// (ideal models stay unwrapped: zero overhead, and `tick` is a no-op).
fn wrap(inner: Box<dyn Transport>, model: &LaneModel, lane: usize) -> Box<dyn Transport> {
    if model.report_delay == 0 && model.loss_probability == 0.0 {
        inner
    } else {
        Box::new(DelayLoss::new(
            inner,
            model.report_delay,
            model.loss_probability,
            model.seed.wrapping_add(lane as u64),
        ))
    }
}

/// The lane substrate of a distributed loop: either one boxed transport
/// pair per lane ([`LaneEngine::Pair`]) or two poll engines multiplexing
/// every lane ([`LaneEngine::Poll`]).
enum Lanes {
    /// One `Transport` object per endpoint; network-effect middleware is
    /// layered per lane via [`DelayLoss`].
    Pair {
        /// Controller-node endpoint of each lane (receives reports,
        /// sends commands; command middleware wraps this side).
        ctrl: Vec<Box<dyn Transport>>,
        /// Processor-node endpoint of each lane (sends reports, receives
        /// commands; report middleware wraps this side).
        proc: Vec<Box<dyn Transport>>,
    },
    /// Every lane a token on one [`eucon_net::PollEngine`] per node.
    /// Network effects run through bare [`DelayLossGate`]s (empty when
    /// the models are ideal), seeded exactly like the pair middleware so
    /// the loss draws match draw-for-draw.
    Poll {
        fabric: Box<LaneFabric>,
        /// Per-lane report-direction gates (processor → controller).
        report_gates: Vec<DelayLossGate>,
        /// Per-lane command-direction gates (controller → processor).
        command_gates: Vec<DelayLossGate>,
    },
}

/// Builds the per-lane gates of one direction (none when the model is
/// ideal — the transparent path costs nothing).  Lane `p` draws from
/// `model.seed + p`, matching [`wrap`].
fn gates(model: &LaneModel, lanes: usize) -> Vec<DelayLossGate> {
    if model.report_delay == 0 && model.loss_probability == 0.0 {
        Vec::new()
    } else {
        (0..lanes)
            .map(|p| {
                DelayLossGate::new(
                    model.report_delay,
                    model.loss_probability,
                    model.seed.wrapping_add(p as u64),
                )
            })
            .collect()
    }
}

/// The transport side of a distributed loop: one bidirectional lane per
/// processor, the per-lane freshness/stale bookkeeping, and the merge
/// scratch for partially delivered rate commands.
///
/// Owned by [`ClosedLoop`] (boxed, `None` in single-process mode) so the
/// period step can route phase 4 (reports) and phase 6 (commands)
/// through the lanes without duplicating the loop itself.
pub(crate) struct NetRuntime {
    lanes: Lanes,
    backend_name: &'static str,
    recv_timeout: Duration,
    /// Tasks whose rate modulator lives on each processor, ascending —
    /// the payload layout of that lane's [`Frame::RateCommand`].
    tasks_of: Vec<Vec<usize>>,
    report_seq: u64,
    cmd_seq: u64,
    /// Last utilization each lane delivered (zeros before the first
    /// delivery) — what a stale lane's entry falls back to.
    hold: Vector,
    /// Whether a report arrived on the lane this period.
    fresh: Vec<bool>,
    /// Newest report / command sequence seen per lane (late duplicates
    /// never roll a lane backwards).
    last_report_seq: Vec<u64>,
    last_cmd_seq: Vec<u64>,
    /// Which lanes received this period's command (drain-loop exit).
    cmd_got: Vec<bool>,
    /// When this period's report left each processor node — the start of
    /// the lane's RTT measurement.
    sent_at: Vec<Option<Instant>>,
    /// Completed report→command round trips this period, nanoseconds.
    rtt_scratch: Vec<u64>,
    /// Rates in force merged with whatever commands arrived.
    cmd_scratch: Vector,
    /// Frames not sent this period because the lane was partitioned.
    period_partition_lost: u64,
    /// Lanes whose hold value was reused this period.
    period_stale: u64,
    /// Aggregate endpoint stats at the last observation (delta source).
    last_stats: TransportStats,
}

impl NetRuntime {
    pub(crate) fn new(
        cfg: &NetConfig,
        num_procs: usize,
        head_proc: &[usize],
    ) -> Result<NetRuntime, CoreError> {
        for (dir, model) in [
            ("report", &cfg.report_lanes),
            ("command", &cfg.command_lanes),
        ] {
            if !(0.0..1.0).contains(&model.loss_probability) {
                return Err(CoreError::Config(format!(
                    "{dir}-lane loss probability must be in [0, 1), got {}",
                    model.loss_probability
                )));
            }
        }
        let mut backend_name = "channel";
        let lanes = match (cfg.engine, &cfg.backend) {
            (LaneEngine::Poll, NetBackend::Channel { .. }) => {
                return Err(CoreError::Config(
                    "the poll lane engine requires the tcp backend".into(),
                ));
            }
            (LaneEngine::Poll, NetBackend::Tcp(tcp)) => {
                backend_name = "tcp-poll";
                let fabric =
                    tcp_lane_fabric(tcp, num_procs).map_err(eucon_net::TransportError::from)?;
                Lanes::Poll {
                    fabric: Box::new(fabric),
                    report_gates: gates(&cfg.report_lanes, num_procs),
                    command_gates: gates(&cfg.command_lanes, num_procs),
                }
            }
            (LaneEngine::Pair, _) => {
                let mut ctrl: Vec<Box<dyn Transport>> = Vec::with_capacity(num_procs);
                let mut proc: Vec<Box<dyn Transport>> = Vec::with_capacity(num_procs);
                for lane in 0..num_procs {
                    let (c, p): (Box<dyn Transport>, Box<dyn Transport>) = match &cfg.backend {
                        NetBackend::Channel { capacity } => {
                            if *capacity == 0 {
                                return Err(CoreError::Config(
                                    "channel lanes need capacity >= 1".into(),
                                ));
                            }
                            let (a, b) = channel_pair(*capacity);
                            (Box::new(a), Box::new(b))
                        }
                        NetBackend::Tcp(tcp) => {
                            backend_name = "tcp";
                            let per_lane = TcpConfig {
                                // De-correlate the lanes' backoff jitter streams
                                // (tcp_pair itself splits the two endpoints).
                                jitter_seed: tcp.jitter_seed.wrapping_add(lane as u64 * 2),
                                ..tcp.clone()
                            };
                            let (acceptor, connector) =
                                tcp_pair(&per_lane).map_err(eucon_net::TransportError::from)?;
                            (Box::new(acceptor), Box::new(connector))
                        }
                    };
                    ctrl.push(wrap(c, &cfg.command_lanes, lane));
                    proc.push(wrap(p, &cfg.report_lanes, lane));
                }
                Lanes::Pair { ctrl, proc }
            }
        };
        let mut tasks_of = vec![Vec::new(); num_procs];
        for (t, &p) in head_proc.iter().enumerate() {
            tasks_of[p].push(t);
        }
        Ok(NetRuntime {
            lanes,
            backend_name,
            recv_timeout: cfg.recv_timeout,
            tasks_of,
            report_seq: 0,
            cmd_seq: 0,
            hold: Vector::zeros(num_procs),
            fresh: vec![false; num_procs],
            last_report_seq: vec![0; num_procs],
            last_cmd_seq: vec![0; num_procs],
            cmd_got: vec![false; num_procs],
            sent_at: vec![None; num_procs],
            rtt_scratch: Vec::with_capacity(num_procs),
            cmd_scratch: Vector::zeros(head_proc.len()),
            period_partition_lost: 0,
            period_stale: 0,
            last_stats: TransportStats::default(),
        })
    }

    /// Registers a newly-admitted task whose rate modulator lives on
    /// processor `head`.  The task takes the next command-vector slot
    /// (slots are never recycled, so the new id is the largest and the
    /// per-lane ascending payload layout is preserved on both endpoints
    /// of the lane).
    pub(crate) fn add_task(&mut self, head: usize) {
        let t = self.cmd_scratch.len();
        self.tasks_of[head].push(t);
        self.cmd_scratch.push(0.0);
    }

    /// Phase 4 of a distributed period: each processor node sends its
    /// utilization over its lane, the controller node collects what
    /// arrives and fills silent lanes from the hold values.
    ///
    /// Returns `None` when the delivered vector is bit-identical to
    /// `u_report` (the ideal-lane common case — nothing to record),
    /// mirroring `LaneState::transmit`.
    pub(crate) fn exchange_reports(
        &mut self,
        k: usize,
        u_report: &Vector,
        partitioned: &[usize],
    ) -> Option<Vector> {
        let n = self.fresh.len();
        self.rtt_scratch.clear();
        self.period_partition_lost = 0;
        self.report_seq += 1;
        let seq = self.report_seq;
        let hold = &mut self.hold;
        let fresh = &mut self.fresh;
        let last_report_seq = &mut self.last_report_seq;
        let sent_at = &mut self.sent_at;
        let period_partition_lost = &mut self.period_partition_lost;
        match &mut self.lanes {
            Lanes::Pair { ctrl, proc } => {
                for p in 0..n {
                    fresh[p] = false;
                    if partitioned.contains(&p) {
                        *period_partition_lost += 1;
                        sent_at[p] = None;
                        continue;
                    }
                    sent_at[p] = Some(Instant::now());
                    // Send failures surface in the endpoint stats; the
                    // lane is simply stale this period.
                    let _ = proc[p].send(Frame::UtilizationReport {
                        seq,
                        period: k as u64,
                        values: vec![u_report[p]],
                    });
                }
                // One tick per period after the sends: the middleware clock.
                for t in proc.iter_mut() {
                    t.tick();
                }
                // Controller node: drain until every reachable lane
                // delivered at least one report or the receive window
                // closes.  In-process channels deliver synchronously, so
                // the first pass suffices.
                let deadline = Instant::now() + self.recv_timeout;
                loop {
                    for p in 0..n {
                        if partitioned.contains(&p) {
                            continue;
                        }
                        while let Ok(Some(frame)) = ctrl[p].try_recv() {
                            if let Frame::UtilizationReport { seq, values, .. } = frame {
                                // A delayed frame still counts as the
                                // delivery — the controller acts on
                                // u(k − d), exactly like the in-loop lane
                                // model.
                                if seq >= last_report_seq[p] && !values.is_empty() {
                                    last_report_seq[p] = seq;
                                    hold[p] = values[0];
                                    fresh[p] = true;
                                }
                            }
                        }
                    }
                    let missing = (0..n).any(|p| !fresh[p] && !partitioned.contains(&p));
                    if !missing || Instant::now() >= deadline {
                        break;
                    }
                    std::thread::yield_now();
                }
            }
            Lanes::Poll {
                fabric,
                report_gates,
                ..
            } => {
                for p in 0..n {
                    fresh[p] = false;
                    if partitioned.contains(&p) {
                        *period_partition_lost += 1;
                        sent_at[p] = None;
                        continue;
                    }
                    sent_at[p] = Some(Instant::now());
                    if report_gates.is_empty() {
                        // Ideal lanes take the allocation-free hot path:
                        // the value is encoded straight onto the socket.
                        let _ = fabric.proc.send(
                            p,
                            FrameKind::UtilizationReport,
                            seq,
                            k as u64,
                            0,
                            std::iter::once(u_report[p]),
                        );
                    } else if let Some(frame) = report_gates[p].offer(Frame::UtilizationReport {
                        seq,
                        period: k as u64,
                        values: vec![u_report[p]],
                    }) {
                        let _ = fabric.proc.send_frame(p, &frame);
                    }
                }
                for (p, gate) in report_gates.iter_mut().enumerate() {
                    gate.tick(|frame| {
                        let _ = fabric.proc.send_frame(p, &frame);
                    });
                }
                let deadline = Instant::now() + self.recv_timeout;
                loop {
                    for p in 0..n {
                        if partitioned.contains(&p) {
                            continue;
                        }
                        // Decode errors tear the lane down inside the
                        // engine; the loop sees it as a stale lane.
                        let _ = fabric.ctrl.drain(p, |view| {
                            if view.kind() == FrameKind::UtilizationReport
                                && view.seq() >= last_report_seq[p]
                                && !view.is_empty()
                            {
                                last_report_seq[p] = view.seq();
                                hold[p] = view.value(0);
                                fresh[p] = true;
                            }
                        });
                    }
                    let missing = (0..n).any(|p| !fresh[p] && !partitioned.contains(&p));
                    if !missing || Instant::now() >= deadline {
                        break;
                    }
                    std::thread::yield_now();
                }
            }
        }
        self.period_stale = self.fresh.iter().filter(|f| !**f).count() as u64;
        let identical = (0..n).all(|p| self.hold[p].to_bits() == u_report[p].to_bits());
        if identical {
            None
        } else {
            Some(self.hold.clone())
        }
    }

    /// Whether lane `p` delivered nothing in the last exchange (its hold
    /// value was reused).
    pub(crate) fn lane_stale(&self, p: usize) -> bool {
        !self.fresh[p]
    }

    /// Phase 6 of a distributed period: the controller node routes each
    /// processor's slice of `cmd` over its lane; the modulators merge
    /// what arrives into the rates `in_force` (a lane that delivers
    /// nothing keeps its tasks' rates unchanged).
    pub(crate) fn actuate(
        &mut self,
        k: usize,
        cmd: &Vector,
        in_force: &[f64],
        partitioned: &[usize],
    ) -> &Vector {
        let n = self.cmd_got.len();
        self.cmd_scratch.copy_from_slice(in_force);
        self.cmd_seq += 1;
        let seq = self.cmd_seq;
        let cmd_scratch = &mut self.cmd_scratch;
        let cmd_got = &mut self.cmd_got;
        let last_cmd_seq = &mut self.last_cmd_seq;
        let sent_at = &mut self.sent_at;
        let rtt_scratch = &mut self.rtt_scratch;
        let tasks_of = &self.tasks_of;
        let period_partition_lost = &mut self.period_partition_lost;
        match &mut self.lanes {
            Lanes::Pair { ctrl, proc } => {
                for p in 0..n {
                    cmd_got[p] = false;
                    if partitioned.contains(&p) {
                        *period_partition_lost += 1;
                        continue;
                    }
                    let rates = tasks_of[p].iter().map(|&t| cmd[t]).collect();
                    let _ = ctrl[p].send(Frame::RateCommand {
                        seq,
                        period: k as u64,
                        rates,
                    });
                }
                for t in ctrl.iter_mut() {
                    t.tick();
                }
                let deadline = Instant::now() + self.recv_timeout;
                loop {
                    for p in 0..n {
                        if partitioned.contains(&p) {
                            continue;
                        }
                        while let Ok(Some(frame)) = proc[p].try_recv() {
                            if let Frame::RateCommand { seq, period, rates } = frame {
                                if seq < last_cmd_seq[p] {
                                    continue;
                                }
                                last_cmd_seq[p] = seq;
                                // A command delayed past its period still
                                // takes effect when it arrives (honest
                                // lane delay).
                                if rates.len() == tasks_of[p].len() {
                                    for (i, &t) in tasks_of[p].iter().enumerate() {
                                        cmd_scratch[t] = rates[i];
                                    }
                                }
                                if period == k as u64 {
                                    cmd_got[p] = true;
                                    if let Some(at) = sent_at[p].take() {
                                        rtt_scratch.push(at.elapsed().as_nanos() as u64);
                                    }
                                }
                            }
                        }
                    }
                    let missing = (0..n).any(|p| !cmd_got[p] && !partitioned.contains(&p));
                    if !missing || Instant::now() >= deadline {
                        break;
                    }
                    std::thread::yield_now();
                }
            }
            Lanes::Poll {
                fabric,
                command_gates,
                ..
            } => {
                for p in 0..n {
                    cmd_got[p] = false;
                    if partitioned.contains(&p) {
                        *period_partition_lost += 1;
                        continue;
                    }
                    if command_gates.is_empty() {
                        // Allocation-free hot path: the per-lane rate
                        // slice streams straight into the encoder.
                        let _ = fabric.ctrl.send(
                            p,
                            FrameKind::RateCommand,
                            seq,
                            k as u64,
                            0,
                            tasks_of[p].iter().map(|&t| cmd[t]),
                        );
                    } else if let Some(frame) = command_gates[p].offer(Frame::RateCommand {
                        seq,
                        period: k as u64,
                        rates: tasks_of[p].iter().map(|&t| cmd[t]).collect(),
                    }) {
                        let _ = fabric.ctrl.send_frame(p, &frame);
                    }
                }
                for (p, gate) in command_gates.iter_mut().enumerate() {
                    gate.tick(|frame| {
                        let _ = fabric.ctrl.send_frame(p, &frame);
                    });
                }
                let deadline = Instant::now() + self.recv_timeout;
                loop {
                    for p in 0..n {
                        if partitioned.contains(&p) {
                            continue;
                        }
                        let _ = fabric.proc.drain(p, |view| {
                            if view.kind() != FrameKind::RateCommand || view.seq() < last_cmd_seq[p]
                            {
                                return;
                            }
                            last_cmd_seq[p] = view.seq();
                            if view.len() == tasks_of[p].len() {
                                for (i, &t) in tasks_of[p].iter().enumerate() {
                                    cmd_scratch[t] = view.value(i);
                                }
                            }
                            if view.period() == k as u64 {
                                cmd_got[p] = true;
                                if let Some(at) = sent_at[p].take() {
                                    rtt_scratch.push(at.elapsed().as_nanos() as u64);
                                }
                            }
                        });
                    }
                    let missing = (0..n).any(|p| !cmd_got[p] && !partitioned.contains(&p));
                    if !missing || Instant::now() >= deadline {
                        break;
                    }
                    std::thread::yield_now();
                }
            }
        }
        &self.cmd_scratch
    }

    /// Aggregate stats over every endpoint of every lane (both sides, so
    /// report and command traffic are both counted once, at the sender
    /// and the receiver respectively).
    pub(crate) fn aggregate_stats(&self) -> TransportStats {
        match &self.lanes {
            Lanes::Pair { ctrl, proc } => {
                let mut agg = TransportStats::default();
                for t in ctrl {
                    agg = agg.merge(&t.stats());
                }
                for t in proc {
                    agg = agg.merge(&t.stats());
                }
                agg
            }
            Lanes::Poll {
                fabric,
                report_gates,
                command_gates,
            } => {
                // Mirror the DelayLoss accounting: a gated direction
                // reports offers as sends and folds loss draws into
                // drops, regardless of what reached the socket.
                let mut proc = fabric.proc.stats();
                if !report_gates.is_empty() {
                    proc.sent = report_gates.iter().map(DelayLossGate::accepted).sum();
                    proc.dropped += report_gates.iter().map(DelayLossGate::lost).sum::<u64>();
                }
                let mut ctrl = fabric.ctrl.stats();
                if !command_gates.is_empty() {
                    ctrl.sent = command_gates.iter().map(DelayLossGate::accepted).sum();
                    ctrl.dropped += command_gates.iter().map(DelayLossGate::lost).sum::<u64>();
                }
                ctrl.merge(&proc)
            }
        }
    }

    /// Lanes whose hold value was reused in the last exchange — the
    /// health signal the control service's eviction policy watches.
    pub(crate) fn stale_lanes(&self) -> u64 {
        self.period_stale
    }

    pub(crate) fn backend_name(&self) -> &'static str {
        self.backend_name
    }

    /// This period's transport activity for the telemetry registry
    /// (per-period deltas of the cumulative endpoint stats, plus the
    /// period-local stale/partition/RTT bookkeeping).
    pub(crate) fn period_observation(&mut self) -> NetPeriod<'_> {
        let agg = self.aggregate_stats();
        let last = self.last_stats;
        self.last_stats = agg;
        NetPeriod {
            sent: agg.sent.saturating_sub(last.sent),
            received: agg.received.saturating_sub(last.received),
            lost: agg.dropped.saturating_sub(last.dropped) + self.period_partition_lost,
            reconnects: agg.reconnects.saturating_sub(last.reconnects),
            decode_errors: agg.decode_errors.saturating_sub(last.decode_errors),
            stale_reuse: self.period_stale,
            rtt_ns: &self.rtt_scratch,
        }
    }
}

impl std::fmt::Debug for NetRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetRuntime")
            .field("backend", &self.backend_name)
            .field("lanes", &self.fresh.len())
            .finish_non_exhaustive()
    }
}

/// A [`ClosedLoop`] whose feedback lanes are real transport lanes: a
/// controller node and one node per processor exchanging versioned
/// binary frames each sampling period.
///
/// Dereferences to [`ClosedLoop`], so `step`, `run`, `telemetry` and the
/// rest of the loop API work unchanged.  Over the ideal in-process
/// backend the traces are bit-identical to the single-process loop; over
/// TCP (or with lossy/delayed lane middleware) the loop degrades the
/// same way the in-loop [`LaneModel`] does — stale lanes reuse the last
/// delivered value and the watchdog is told.
///
/// # Example
///
/// ```
/// use eucon_core::{ControllerSpec, DistributedLoop};
/// use eucon_sim::SimConfig;
/// use eucon_tasks::workloads;
///
/// # fn main() -> Result<(), eucon_core::CoreError> {
/// let mut dl = DistributedLoop::builder(workloads::simple())
///     .sim_config(SimConfig::constant_etf(0.5))
///     .controller(ControllerSpec::Eucon(eucon_control::MpcConfig::simple()))
///     .channel(4)
///     .build()?;
/// let result = dl.run(50);
/// assert_eq!(result.control_errors, 0);
/// assert!(dl.transport_stats().sent > 0);
/// # Ok(())
/// # }
/// ```
pub struct DistributedLoop {
    inner: ClosedLoop,
}

impl DistributedLoop {
    /// Starts building a distributed loop around a task set (default
    /// backend: ideal in-process channels).
    pub fn builder(set: TaskSet) -> DistributedLoopBuilder {
        DistributedLoopBuilder {
            inner: ClosedLoop::builder(set),
            net: NetConfig::channel(),
        }
    }

    /// Wraps a closed loop whose lanes were already attached (the
    /// unified `LoopBuilder` finisher).
    pub(crate) fn from_inner(inner: ClosedLoop) -> Self {
        DistributedLoop { inner }
    }

    /// Aggregate transport counters over every lane endpoint.
    pub fn transport_stats(&self) -> TransportStats {
        self.inner
            .net
            .as_ref()
            .map(|n| n.aggregate_stats())
            .unwrap_or_default()
    }

    /// The transport backend label (`"channel"` or `"tcp"`).
    pub fn backend_name(&self) -> &'static str {
        self.inner.net.as_ref().map_or("none", |n| n.backend_name())
    }

    /// Consumes the loop, returning the final result.
    pub fn into_result(self) -> RunResult {
        self.inner.into_result()
    }
}

impl Deref for DistributedLoop {
    type Target = ClosedLoop;

    fn deref(&self) -> &ClosedLoop {
        &self.inner
    }
}

impl DerefMut for DistributedLoop {
    fn deref_mut(&mut self) -> &mut ClosedLoop {
        &mut self.inner
    }
}

impl std::fmt::Debug for DistributedLoop {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DistributedLoop")
            .field("backend", &self.backend_name())
            .field("inner", &self.inner)
            .finish()
    }
}

/// Builder for [`DistributedLoop`]: the full [`ClosedLoopBuilder`]
/// surface plus the transport configuration.
#[derive(Debug)]
pub struct DistributedLoopBuilder {
    inner: ClosedLoopBuilder,
    net: NetConfig,
}

impl DistributedLoopBuilder {
    /// See [`ClosedLoopBuilder::sim_config`].
    pub fn sim_config(mut self, cfg: SimConfig) -> Self {
        self.inner = self.inner.sim_config(cfg);
        self
    }

    /// See [`ClosedLoopBuilder::controller`].
    pub fn controller(mut self, factory: impl ControllerFactory + 'static) -> Self {
        self.inner = self.inner.controller(factory);
        self
    }

    /// See [`ClosedLoopBuilder::set_points`].
    pub fn set_points(mut self, b: Vector) -> Self {
        self.inner = self.inner.set_points(b);
        self
    }

    /// See [`ClosedLoopBuilder::plant`] — the transport lanes compose
    /// with any backend.
    pub fn plant(mut self, factory: impl crate::PlantFactory + 'static) -> Self {
        self.inner = self.inner.plant(factory);
        self
    }

    /// See [`ClosedLoopBuilder::faults`] (lane-partition windows in the
    /// plan silence the affected lanes in both directions).
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.inner = self.inner.faults(plan);
        self
    }

    /// See [`ClosedLoopBuilder::sampling_period`].
    pub fn sampling_period(mut self, ts: f64) -> Self {
        self.inner = self.inner.sampling_period(ts);
        self
    }

    /// See [`ClosedLoopBuilder::record_trace`].
    pub fn record_trace(mut self, on: bool) -> Self {
        self.inner = self.inner.record_trace(on);
        self
    }

    /// See [`ClosedLoopBuilder::quantized_rates`].
    pub fn quantized_rates(mut self, levels: usize) -> Self {
        self.inner = self.inner.quantized_rates(levels);
        self
    }

    /// See [`ClosedLoopBuilder::telemetry_sink`].
    pub fn telemetry_sink(mut self, sink: impl TelemetrySink + 'static) -> Self {
        self.inner = self.inner.telemetry_sink(sink);
        self
    }

    /// See [`ClosedLoopBuilder::telemetry_batch`].
    pub fn telemetry_batch(mut self, rows: usize) -> Self {
        self.inner = self.inner.telemetry_batch(rows);
        self
    }

    /// See [`ClosedLoopBuilder::churn`] (arrivals register a fresh slot
    /// on their head processor's command lane).
    pub fn churn(mut self, plan: ChurnPlan) -> Self {
        self.inner = self.inner.churn(plan);
        self
    }

    /// See [`ClosedLoopBuilder::admission`].
    pub fn admission(mut self, policy: AdmissionPolicy) -> Self {
        self.inner = self.inner.admission(policy);
        self
    }

    /// Replaces the whole transport configuration.
    pub fn net(mut self, cfg: NetConfig) -> Self {
        self.net = cfg;
        self
    }

    /// Uses in-process channel lanes with the given per-direction
    /// capacity (frames beyond it evict the oldest).
    pub fn channel(mut self, capacity: usize) -> Self {
        self.net.backend = NetBackend::Channel { capacity };
        self.net.recv_timeout = Duration::ZERO;
        self
    }

    /// Uses loopback-TCP lanes with the given tuning and a 2 ms receive
    /// window (override with [`DistributedLoopBuilder::recv_timeout`]).
    pub fn tcp(mut self, cfg: TcpConfig) -> Self {
        self.net.backend = NetBackend::Tcp(cfg);
        if self.net.recv_timeout.is_zero() {
            self.net.recv_timeout = Duration::from_millis(2);
        }
        self
    }

    /// Uses loopback-TCP lanes multiplexed on the poll engine: one
    /// readiness sweep over every lane, zero-copy decode,
    /// allocation-free sends (see [`LaneEngine::Poll`]).
    pub fn tcp_poll(mut self, cfg: TcpConfig) -> Self {
        self.net.engine = LaneEngine::Poll;
        self.tcp(cfg)
    }

    /// Selects how the lanes are driven (per-lane transport pairs or
    /// one poll engine per node).
    pub fn engine(mut self, engine: LaneEngine) -> Self {
        self.net.engine = engine;
        self
    }

    /// Applies delay/loss middleware to the report direction of every
    /// lane (lane `p` draws its losses from `model.seed + p`).
    pub fn report_lanes(mut self, model: LaneModel) -> Self {
        self.net.report_lanes = model;
        self
    }

    /// Applies delay/loss middleware to the command direction of every
    /// lane.
    pub fn command_lanes(mut self, model: LaneModel) -> Self {
        self.net.command_lanes = model;
        self
    }

    /// Overrides how long each period's exchange waits for outstanding
    /// frames before declaring the silent lanes stale.
    pub fn recv_timeout(mut self, window: Duration) -> Self {
        self.net.recv_timeout = window;
        self
    }

    /// Builds the loop and connects the lanes.
    ///
    /// # Errors
    ///
    /// Everything [`ClosedLoopBuilder::build`] rejects, plus
    /// [`CoreError::Transport`] when the backend fails to connect (e.g.
    /// binding the loopback sockets) and [`CoreError::Config`] for
    /// out-of-domain lane parameters.
    pub fn build(self) -> Result<DistributedLoop, CoreError> {
        let mut inner = self.inner.build()?;
        inner.attach_net(&self.net)?;
        Ok(DistributedLoop { inner })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ControllerSpec;
    use eucon_control::MpcConfig;
    use eucon_tasks::workloads;

    fn single(etf: f64, periods: usize) -> RunResult {
        let mut cl = ClosedLoop::builder(workloads::simple())
            .sim_config(SimConfig::constant_etf(etf))
            .controller(ControllerSpec::Eucon(MpcConfig::simple()))
            .build()
            .unwrap();
        cl.run(periods)
    }

    #[test]
    fn ideal_channel_lanes_match_the_single_process_loop_bitwise() {
        let want = single(0.5, 40);
        let mut dl = DistributedLoop::builder(workloads::simple())
            .sim_config(SimConfig::constant_etf(0.5))
            .controller(ControllerSpec::Eucon(MpcConfig::simple()))
            .channel(4)
            .build()
            .unwrap();
        let got = dl.run(40);
        assert_eq!(dl.backend_name(), "channel");
        assert_eq!(got.trace, want.trace, "traces must be bit-identical");
        assert_eq!(got.control_errors, 0);
        // Every step delivered unchanged — no received vectors recorded.
        assert!(got.trace.steps().iter().all(|s| s.received.is_none()));
        // 2 lanes × (1 report + 1 command) × 40 periods.
        let stats = dl.transport_stats();
        assert_eq!(stats.sent, 160);
        assert_eq!(stats.received, 160);
        assert_eq!(stats.dropped, 0);
    }

    #[test]
    fn lossy_report_lanes_reuse_the_hold_value_and_count_stale() {
        let mut dl = DistributedLoop::builder(workloads::simple())
            .sim_config(SimConfig::constant_etf(0.5))
            .controller(ControllerSpec::Eucon(MpcConfig::simple()))
            .channel(4)
            .report_lanes(LaneModel::lossy(0.3, 11))
            .build()
            .unwrap();
        let result = dl.run(60);
        assert_eq!(result.control_errors, 0);
        let stats = dl.transport_stats();
        assert!(stats.dropped > 0, "30% loss must drop frames");
        let stale = result.telemetry.counter("stale_report_reuse").unwrap();
        assert!(stale > 0, "lost reports reuse the hold value");
        assert_eq!(result.telemetry.counter("frames_lost"), Some(stats.dropped));
        // Loss shows up as received vectors differing from the truth.
        assert!(result.trace.steps().iter().any(|s| s.received.is_some()));
    }

    #[test]
    fn delayed_report_lanes_shift_what_the_controller_sees() {
        let mut dl = DistributedLoop::builder(workloads::simple())
            .sim_config(SimConfig::constant_etf(0.5))
            .controller(ControllerSpec::Eucon(MpcConfig::simple()))
            .channel(8)
            .report_lanes(LaneModel::delayed(2))
            .build()
            .unwrap();
        let result = dl.run(20);
        let steps = result.trace.steps();
        // The first two periods deliver nothing: the controller saw zeros.
        for (k, step) in steps.iter().enumerate().take(2) {
            let seen = step.seen();
            assert!((0..2).all(|p| seen[p] == 0.0), "period {k} not held at 0");
        }
        // From period 2 on, the controller sees u(k − 2) bit-for-bit.
        for k in 2..20 {
            let seen = steps[k].seen();
            for p in 0..2 {
                assert_eq!(
                    seen[p].to_bits(),
                    steps[k - 2].utilization[p].to_bits(),
                    "period {k} lane {p}"
                );
            }
        }
    }

    #[test]
    fn tcp_lanes_run_the_loop_with_zero_errors() {
        let mut dl = DistributedLoop::builder(workloads::simple())
            .sim_config(SimConfig::constant_etf(0.5))
            .controller(ControllerSpec::Eucon(MpcConfig::simple()))
            .tcp(TcpConfig::default())
            // A generous window keeps the bit-exactness assertions below
            // deterministic even on a loaded CI machine.
            .recv_timeout(Duration::from_millis(50))
            .build()
            .unwrap();
        let result = dl.run(30);
        assert_eq!(dl.backend_name(), "tcp");
        assert_eq!(result.control_errors, 0);
        let stats = dl.transport_stats();
        assert_eq!(stats.sent, 120, "2 lanes × 2 directions × 30 periods");
        assert_eq!(stats.decode_errors, 0);
        assert!(stats.bytes_sent > 0, "real bytes crossed the wire");
        // Loopback TCP is fast and lossless: everything arrived, so the
        // trace records no mutated deliveries.
        assert_eq!(stats.received, 120);
        assert!(result.trace.steps().iter().all(|s| s.received.is_none()));
        assert!(
            result.telemetry.histogram("lane_rtt_ns").unwrap().count > 0,
            "round trips were measured"
        );
    }

    #[test]
    fn partitioned_lanes_freeze_reports_and_commands() {
        let mut dl = DistributedLoop::builder(workloads::simple())
            .sim_config(SimConfig::constant_etf(0.5))
            .controller(ControllerSpec::Eucon(MpcConfig::simple()))
            .channel(4)
            .faults(FaultPlan::none().partition(1, 10, 15))
            .build()
            .unwrap();
        let result = dl.run(30);
        assert_eq!(result.faults.partitioned_periods, 5);
        let steps = result.trace.steps();
        assert_eq!(steps[10].annotations.partitioned, vec![1]);
        assert!(steps[9].annotations.partitioned.is_empty());
        // During the partition the controller sees lane 1's last delivery.
        let held = steps[9].utilization[1];
        for (k, step) in steps.iter().enumerate().take(15).skip(10) {
            assert_eq!(
                step.seen()[1].to_bits(),
                held.to_bits(),
                "period {k} must reuse the pre-partition report"
            );
        }
        // After it heals, fresh reports flow again.
        assert!(steps[16].received.is_none());
        assert!(
            result.telemetry.counter("stale_report_reuse").unwrap() >= 5,
            "each partitioned period reused the hold value"
        );
    }

    #[test]
    fn poll_engine_runs_the_loop_bit_identically() {
        let want = single(0.5, 30);
        let mut dl = DistributedLoop::builder(workloads::simple())
            .sim_config(SimConfig::constant_etf(0.5))
            .controller(ControllerSpec::Eucon(MpcConfig::simple()))
            .tcp_poll(TcpConfig::default())
            .recv_timeout(Duration::from_millis(50))
            .build()
            .unwrap();
        let result = dl.run(30);
        assert_eq!(dl.backend_name(), "tcp-poll");
        assert_eq!(result.control_errors, 0);
        assert_eq!(result.trace, want.trace, "poll lanes must be lossless");
        let stats = dl.transport_stats();
        assert_eq!(stats.sent, 120, "2 lanes × 2 directions × 30 periods");
        assert_eq!(stats.received, 120);
        assert_eq!(stats.decode_errors, 0);
        assert!(stats.bytes_sent > 0, "real bytes crossed the wire");
        assert!(result.trace.steps().iter().all(|s| s.received.is_none()));
    }

    #[test]
    fn poll_engine_lossy_lanes_reuse_hold_values() {
        let mut dl = DistributedLoop::builder(workloads::simple())
            .sim_config(SimConfig::constant_etf(0.5))
            .controller(ControllerSpec::Eucon(MpcConfig::simple()))
            .tcp_poll(TcpConfig::default())
            .recv_timeout(Duration::from_millis(20))
            .report_lanes(LaneModel::lossy(0.3, 11))
            .build()
            .unwrap();
        let result = dl.run(60);
        assert_eq!(result.control_errors, 0);
        let stats = dl.transport_stats();
        assert!(stats.dropped > 0, "30% loss must drop frames");
        assert_eq!(stats.decode_errors, 0);
        let stale = result.telemetry.counter("stale_report_reuse").unwrap();
        assert!(stale > 0, "lost reports reuse the hold value");
        assert!(result.trace.steps().iter().any(|s| s.received.is_some()));
    }

    #[test]
    fn poll_engine_loss_draws_match_the_pair_engine() {
        // Same seeds, same models: both engines must drop the exact same
        // report sequence, so the traces are bit-identical.
        let run = |poll: bool| {
            let b = DistributedLoop::builder(workloads::simple())
                .sim_config(SimConfig::constant_etf(0.5))
                .controller(ControllerSpec::Eucon(MpcConfig::simple()))
                .report_lanes(LaneModel::lossy(0.25, 5))
                .command_lanes(LaneModel::delayed(1))
                .recv_timeout(Duration::from_millis(50));
            let mut dl = if poll {
                b.tcp_poll(TcpConfig::default()).build().unwrap()
            } else {
                b.tcp(TcpConfig::default()).build().unwrap()
            };
            dl.run(40)
        };
        let pair = run(false);
        let poll = run(true);
        assert_eq!(pair.trace, poll.trace, "engines diverged under loss");
    }

    #[test]
    fn poll_engine_requires_tcp() {
        let err = DistributedLoop::builder(workloads::simple())
            .channel(4)
            .engine(LaneEngine::Poll)
            .build()
            .unwrap_err();
        assert!(matches!(err, CoreError::Config(ref m) if m.contains("poll")));
    }

    #[test]
    fn build_rejects_zero_capacity_and_bad_loss() {
        let err = DistributedLoop::builder(workloads::simple())
            .channel(0)
            .build()
            .unwrap_err();
        assert!(matches!(err, CoreError::Config(ref m) if m.contains("capacity")));
        let err = DistributedLoop::builder(workloads::simple())
            .report_lanes(LaneModel {
                report_delay: 0,
                loss_probability: 1.0,
                seed: 0,
            })
            .build()
            .unwrap_err();
        assert!(matches!(err, CoreError::Config(ref m) if m.contains("loss probability")));
    }
}
