//! Boundary-state exchange over real transport lanes: the networked
//! backend of [`eucon_control::BoundaryBus`].
//!
//! The sharded controller (`eucon-control`) coordinates its per-shard
//! MPCs through a [`BoundaryBus`]; this module routes that coordination
//! over `eucon-net` lanes — **one lane pair per shard** to a hub that
//! keeps the cluster's boundary boards:
//!
//! * **up lane** (shard → hub): per period, a shard sends one
//!   [`Frame::BoundaryExchange`] with its home-processor utilizations
//!   (Phase A) and one with its committed rate moves (after its solve).
//!   The first payload value is a protocol tag (`0.0` = utilizations,
//!   `1.0` = moves); the remainder are the values in the shard's fixed
//!   home/owned order.
//! * **down lane** (hub → shard): on each fetch the hub answers with one
//!   frame holding the shard's boundary view — peer moves for its
//!   boundary tasks, then utilizations for its boundary processors, in
//!   the shard's fixed boundary order.
//!
//! ## Consistency model
//!
//! Over ideal lanes every frame crosses within the publish/fetch call
//! that produced it, so the sweep sees exactly the shared-memory
//! exchange — the equivalence test pins this bit-for-bit.  Under delay
//! or loss ([`DelayLoss`] middleware on every sending endpoint), a shard
//! whose down-frame did not arrive simply keeps its previous boundary
//! view (stale-state hold), and the hub's boards hold each shard's last
//! delivered publish: *eventual consistency between control domains* —
//! the team converges to the same fixed point once frames flow again,
//! and a completely deaf bus degrades to independent per-shard control,
//! never to garbage.
//!
//! The hub's utilization board is seeded with the set points, matching
//! the shard-side view default: a boundary sample that never arrived
//! contributes zero tracking error rather than a phantom disturbance.

use eucon_control::{BoundaryBus, ControlError, ControllerTelemetry, RateController};
use eucon_control::{MpcConfig, ShardPlan, ShardPlanner, ShardedController};
use eucon_math::Vector;
use eucon_net::{channel_pair, DelayLoss, Frame, Transport};
use eucon_tasks::TaskSet;

/// Payload tag of an up-lane frame carrying home utilizations.
const TAG_UTILIZATION: f64 = 0.0;
/// Payload tag of an up-lane frame carrying committed moves.
const TAG_MOVES: f64 = 1.0;

/// Per-shard lane capacity: a period produces at most three frames per
/// shard, so a small bound suffices; drop-oldest backpressure keeps the
/// freshest state flowing when a lossy run backs up.
const LANE_CAPACITY: usize = 8;

/// How shard boundary state travels between control domains.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BoundaryMode {
    /// Shared-memory exchange inside the sweep (no lanes) — the
    /// reference semantics.
    InProcess,
    /// One ideal (lossless, same-period) lane pair per shard;
    /// bit-identical to [`BoundaryMode::InProcess`].
    IdealLanes,
    /// One lane pair per shard behind delay/loss middleware: frames
    /// spend `delay` periods in flight and each crossing frame drops
    /// with probability `loss`.
    LossyLanes {
        /// Whole sampling periods each boundary frame spends in flight.
        delay: usize,
        /// Per-frame drop probability in `[0, 1)`.
        loss: f64,
        /// Seed for the per-lane loss draws.
        seed: u64,
    },
}

/// Cumulative traffic counters of a [`ShardBoundaryNet`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardNetStats {
    /// Boundary frames accepted for sending (both directions).
    pub frames_sent: u64,
    /// Boundary frames delivered to their receiving endpoint.
    pub frames_delivered: u64,
    /// Boundary frames dropped by loss middleware or backpressure.
    pub frames_dropped: u64,
    /// Fetches answered from the stale held view (no down-frame arrived).
    pub stale_fetches: u64,
}

/// One shard's lane pair plus its fixed frame layouts.
struct ShardLane {
    /// Shard endpoint of the up lane (sends publishes).
    up_tx: Box<dyn Transport>,
    /// Hub endpoint of the up lane (receives publishes).
    up_rx: Box<dyn Transport>,
    /// Hub endpoint of the down lane (sends boundary views).
    down_tx: Box<dyn Transport>,
    /// Shard endpoint of the down lane (receives boundary views).
    down_rx: Box<dyn Transport>,
    /// The shard's home processors — the layout of its utilization
    /// publishes (fixed at construction, like a deployment's config).
    home: Vec<usize>,
    /// Tasks whose head subtask lives in the shard — the layout of its
    /// move publishes.
    owned: Vec<usize>,
}

/// [`BoundaryBus`] over one `eucon-net` lane pair per shard.
///
/// Build with [`ShardBoundaryNet::ideal`] or
/// [`ShardBoundaryNet::lossy`], then drive
/// [`ShardedController::update_with_bus`] — or let
/// [`NetShardedController`] bundle both behind [`RateController`].
pub struct ShardBoundaryNet {
    lanes: Vec<ShardLane>,
    /// Last delivered home utilization per processor (init: set points).
    u_board: Vec<f64>,
    /// Last delivered committed move per task (init: zero — no task has
    /// moved yet, matching the shard-side view default).
    move_board: Vec<f64>,
    seq: u64,
    period: u64,
    fetches: u64,
    stale_fetches: u64,
}

impl std::fmt::Debug for ShardBoundaryNet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardBoundaryNet")
            .field("shards", &self.lanes.len())
            .field("period", &self.period)
            .field("stats", &self.stats())
            .finish()
    }
}

impl ShardBoundaryNet {
    /// Builds the hub with one ideal lane pair per shard.
    pub fn ideal(set: &TaskSet, plan: &ShardPlan, set_points: &Vector) -> Self {
        Self::build(set, plan, set_points, None)
    }

    /// Builds the hub with delay/loss middleware on every sending
    /// endpoint; lane seeds derive from `seed` so every lane draws an
    /// independent loss sequence.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ loss < 1` (via [`DelayLoss::new`]).
    pub fn lossy(
        set: &TaskSet,
        plan: &ShardPlan,
        set_points: &Vector,
        delay: usize,
        loss: f64,
        seed: u64,
    ) -> Self {
        Self::build(set, plan, set_points, Some((delay, loss, seed)))
    }

    fn build(
        set: &TaskSet,
        plan: &ShardPlan,
        set_points: &Vector,
        lossy: Option<(usize, f64, u64)>,
    ) -> Self {
        let m = set.num_tasks();
        let mut lanes = Vec::with_capacity(plan.num_shards());
        for (s, home) in plan.shards().iter().enumerate() {
            let owned: Vec<usize> = (0..m)
                .filter(|&j| home.contains(&set.tasks()[j].subtasks()[0].processor.0))
                .collect();
            let (up_tx, up_rx) = channel_pair(LANE_CAPACITY);
            let (down_tx, down_rx) = channel_pair(LANE_CAPACITY);
            let (up_tx, down_tx): (Box<dyn Transport>, Box<dyn Transport>) = match lossy {
                None => (Box::new(up_tx), Box::new(down_tx)),
                Some((delay, loss, seed)) => {
                    // Distinct per-lane seeds: the up and down draws of a
                    // shard, and the draws of different shards, must be
                    // independent loss sequences.
                    let base = seed.wrapping_add(2 * s as u64);
                    (
                        Box::new(DelayLoss::new(up_tx, delay, loss, base)),
                        Box::new(DelayLoss::new(down_tx, delay, loss, base.wrapping_add(1))),
                    )
                }
            };
            lanes.push(ShardLane {
                up_tx,
                up_rx: Box::new(up_rx),
                down_tx,
                down_rx: Box::new(down_rx),
                home: home.clone(),
                owned,
            });
        }
        ShardBoundaryNet {
            lanes,
            u_board: set_points.iter().copied().collect(),
            move_board: vec![0.0; m],
            seq: 0,
            period: 0,
            fetches: 0,
            stale_fetches: 0,
        }
    }

    /// Cumulative traffic counters across every lane.
    pub fn stats(&self) -> ShardNetStats {
        let mut s = ShardNetStats::default();
        for lane in &self.lanes {
            for t in [&lane.up_tx, &lane.down_tx] {
                let ts = t.stats();
                s.frames_sent += ts.sent;
                s.frames_dropped += ts.dropped;
            }
            for t in [&lane.up_rx, &lane.down_rx] {
                s.frames_delivered += t.stats().received;
            }
        }
        s.stale_fetches = self.stale_fetches;
        s
    }

    /// Fetch calls served so far (one per solving shard per period).
    pub fn fetches(&self) -> u64 {
        self.fetches
    }

    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    /// Applies every up-frame pending on shard `s`'s up lane to the hub
    /// boards.  Frames arrive in send order, so later (fresher) frames
    /// overwrite earlier ones.
    fn drain_up(&mut self, s: usize) {
        let lane = &mut self.lanes[s];
        while let Ok(Some(frame)) = lane.up_rx.try_recv() {
            let values = frame.values();
            let Some((&tag, body)) = values.split_first() else {
                continue;
            };
            if tag == TAG_UTILIZATION {
                for (&p, &v) in lane.home.iter().zip(body) {
                    self.u_board[p] = v;
                }
            } else {
                for (&j, &v) in lane.owned.iter().zip(body) {
                    self.move_board[j] = v;
                }
            }
        }
    }

    fn send_up(&mut self, s: usize, tag: f64, body: &[f64]) {
        let mut values = Vec::with_capacity(1 + body.len());
        values.push(tag);
        values.extend_from_slice(body);
        let frame = Frame::BoundaryExchange {
            seq: self.next_seq(),
            period: self.period,
            shard: s as u16,
            values,
        };
        let _ = self.lanes[s].up_tx.send(frame);
        // An ideal lane delivered synchronously; a delayed one will be
        // drained after a later tick.  Draining here keeps the hub boards
        // exactly in step with the sweep on ideal lanes.
        self.drain_up(s);
    }
}

impl BoundaryBus for ShardBoundaryNet {
    fn begin_period(&mut self) {
        self.period += 1;
        // The period tick is the lanes' clock: it releases frames whose
        // delay elapsed, which the next drain then applies.
        for s in 0..self.lanes.len() {
            self.lanes[s].up_tx.tick();
            self.lanes[s].up_rx.tick();
            self.lanes[s].down_tx.tick();
            self.lanes[s].down_rx.tick();
            self.drain_up(s);
        }
    }

    fn publish_utilization(&mut self, shard: usize, _procs: &[usize], u: &[f64]) {
        self.send_up(shard, TAG_UTILIZATION, u);
    }

    fn publish_moves(&mut self, shard: usize, _tasks: &[usize], moves: &[f64]) {
        self.send_up(shard, TAG_MOVES, moves);
    }

    fn fetch(
        &mut self,
        shard: usize,
        move_tasks: &[usize],
        moves: &mut [f64],
        procs: &[usize],
        u: &mut [f64],
    ) {
        self.fetches += 1;
        // Hub side: compose the shard's boundary view from the boards
        // and send it down the shard's lane.
        let mut values = Vec::with_capacity(move_tasks.len() + procs.len());
        values.extend(move_tasks.iter().map(|&j| self.move_board[j]));
        values.extend(procs.iter().map(|&p| self.u_board[p]));
        let frame = Frame::BoundaryExchange {
            seq: self.next_seq(),
            period: self.period,
            shard: shard as u16,
            values,
        };
        let _ = self.lanes[shard].down_tx.send(frame);

        // Shard side: drain the down lane and apply the freshest view
        // that arrived.  Nothing arrived → the caller's held view stands.
        let mut latest: Option<Frame> = None;
        while let Ok(Some(f)) = self.lanes[shard].down_rx.try_recv() {
            latest = Some(f);
        }
        match latest {
            Some(f) => {
                let values = f.values();
                // A down-frame's layout is fixed per shard, so even a
                // frame delayed from an earlier period splits the same way.
                debug_assert_eq!(values.len(), moves.len() + u.len());
                for (dst, &v) in moves.iter_mut().zip(values) {
                    *dst = v;
                }
                for (dst, &v) in u.iter_mut().zip(&values[moves.len()..]) {
                    *dst = v;
                }
            }
            None => self.stale_fetches += 1,
        }
    }
}

/// The sharded controller team with its boundary exchange riding
/// `eucon-net` lanes, bundled behind [`RateController`] so loops and
/// fleets can run cluster-scale sharded control like any other law.
#[derive(Debug)]
pub struct NetShardedController {
    team: ShardedController,
    bus: ShardBoundaryNet,
}

impl NetShardedController {
    /// Plans the partition at `shard_size`, builds the team and wires
    /// the boundary lanes per `mode` ([`BoundaryMode::InProcess`] is
    /// served by [`ShardedController`] itself and rejected here).
    ///
    /// # Errors
    ///
    /// Propagates team-construction failures; rejects
    /// [`BoundaryMode::InProcess`] as a dimension error.
    pub fn new(
        set: &TaskSet,
        set_points: Vector,
        cfg: MpcConfig,
        shard_size: usize,
        mode: &BoundaryMode,
    ) -> Result<Self, ControlError> {
        let plan = ShardPlanner::new(set).target_size(shard_size).plan();
        let bus = match mode {
            BoundaryMode::InProcess => {
                return Err(ControlError::DimensionMismatch(
                    "in-process boundary mode needs no net-backed controller".into(),
                ))
            }
            BoundaryMode::IdealLanes => ShardBoundaryNet::ideal(set, &plan, &set_points),
            BoundaryMode::LossyLanes { delay, loss, seed } => {
                ShardBoundaryNet::lossy(set, &plan, &set_points, *delay, *loss, *seed)
            }
        };
        let team = ShardedController::new(set, set_points, cfg, plan)?;
        Ok(NetShardedController { team, bus })
    }

    /// The underlying team (plan, problem sizes, bandwidths).
    pub fn team(&self) -> &ShardedController {
        &self.team
    }

    /// Boundary-lane traffic counters.
    pub fn net_stats(&self) -> ShardNetStats {
        self.bus.stats()
    }
}

impl RateController for NetShardedController {
    fn update(&mut self, u: &Vector) -> Result<(), ControlError> {
        self.team.update_with_bus(u, &mut self.bus)
    }

    fn rates(&self) -> &Vector {
        self.team.rates()
    }

    fn name(&self) -> &'static str {
        "SHARD-EUCON/NET"
    }

    fn telemetry(&self) -> ControllerTelemetry {
        self.team.telemetry()
    }

    fn reset(&mut self, rates: &Vector) {
        self.team.reset(rates);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eucon_tasks::{rms_set_points, workloads, workloads::RandomWorkload};

    fn bits(v: &Vector) -> Vec<u64> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn ideal_lanes_bit_identical_to_in_process_exchange() {
        let set = RandomWorkload::new(8, 24).seed(7).generate();
        let b = rms_set_points(&set);
        let cfg = MpcConfig::medium();
        let mut direct =
            ShardedController::with_shard_size(&set, b.clone(), cfg.clone(), 4).unwrap();
        let mut net =
            NetShardedController::new(&set, b.clone(), cfg, 4, &BoundaryMode::IdealLanes).unwrap();
        let n = set.num_processors();
        let mut u = Vector::from_iter((0..n).map(|p| 0.9 * b[p]));
        for period in 0..120 {
            direct.update(&u).unwrap();
            net.update(&u).unwrap();
            assert_eq!(
                bits(direct.rates()),
                bits(net.rates()),
                "diverged at period {period}"
            );
            // Crude plant: utilization proportional to commanded rates.
            let f = set.allocation_matrix();
            u = f.mul_vec(direct.rates());
        }
        let stats = net.net_stats();
        assert_eq!(stats.frames_dropped, 0);
        assert_eq!(stats.stale_fetches, 0);
        assert!(stats.frames_sent > 0);
    }

    #[test]
    fn lossy_lanes_hold_stale_views_and_still_converge() {
        let set = RandomWorkload::new(8, 24).seed(11).generate();
        let b = rms_set_points(&set);
        let mut net = NetShardedController::new(
            &set,
            b.clone(),
            MpcConfig::medium(),
            4,
            &BoundaryMode::LossyLanes {
                delay: 1,
                loss: 0.3,
                seed: 5,
            },
        )
        .unwrap();
        let f = set.allocation_matrix();
        let mut u = Vector::from_iter((0..set.num_processors()).map(|p| 0.9 * b[p]));
        for _ in 0..300 {
            net.update(&u).unwrap();
            u = f.mul_vec(net.rates());
        }
        let err = (0..u.len())
            .map(|p| (u[p] - b[p]).abs())
            .fold(0.0f64, f64::max);
        assert!(err < 0.05, "tracking error {err} under 30% boundary loss");
        let stats = net.net_stats();
        assert!(stats.frames_dropped > 0, "loss middleware saw no traffic");
    }

    #[test]
    fn deaf_boundary_degrades_to_independent_shards() {
        // Loss probability near 1: almost no boundary state ever crosses.
        let set = workloads::medium();
        let b = rms_set_points(&set);
        let mut net = NetShardedController::new(
            &set,
            b.clone(),
            MpcConfig::medium(),
            2,
            &BoundaryMode::LossyLanes {
                delay: 0,
                loss: 0.99,
                seed: 3,
            },
        )
        .unwrap();
        let f = set.allocation_matrix();
        let mut u = Vector::from_iter((0..set.num_processors()).map(|p| 0.8 * b[p]));
        for _ in 0..300 {
            net.update(&u).unwrap();
            u = f.mul_vec(net.rates());
        }
        let err = (0..u.len())
            .map(|p| (u[p] - b[p]).abs())
            .fold(0.0f64, f64::max);
        assert!(err < 0.05, "deaf boundary must still track ({err})");
        assert!(net.net_stats().stale_fetches > 0);
    }

    #[test]
    fn in_process_mode_rejected_by_net_controller() {
        let set = workloads::medium();
        let b = rms_set_points(&set);
        assert!(NetShardedController::new(
            &set,
            b,
            MpcConfig::medium(),
            2,
            &BoundaryMode::InProcess
        )
        .is_err());
    }
}
