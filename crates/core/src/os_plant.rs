//! Real-OS plant (feature `os-plant`, Linux-only): CPU-bound worker
//! processes on the host scheduler.
//!
//! One worker process per task runs a busy loop; the EUCON rate command
//! for a task becomes a CPU bandwidth share for its worker, actuated
//! through a cgroup v2 `cpu.max` quota (with `renice` as a best-effort
//! fallback when cgroups are unavailable), and per-processor utilization
//! is sampled from `/proc/<pid>/stat` CPU-time deltas over the wall
//! clock.  The loop's sampling period maps to a configurable slice of
//! wall time ([`OsPlantConfig::wall_period`]).
//!
//! This is deliberately the *smallest* real-workload shim that closes
//! the paper's loop against an actual scheduler — the point the related
//! CPS work makes (PAPERS.md): the controller does not care whether the
//! plant is an event-driven simulation or real processes, as long as
//! utilizations come in and rate commands take effect.  It trades
//! fidelity for portability: "processor `p`" is an accounting group of
//! workers, not a pinned core, and deadline statistics are not tracked.
//!
//! Construction degrades explicitly: [`OsPlantConfig::cgroups_available`]
//! probes for a writable cgroup v2 CPU controller, and
//! [`OsPlantConfig::require_cgroups`] turns a failed probe into a
//! [`CoreError::Config`] instead of the renice fallback.

use std::fs;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use eucon_math::Vector;
use eucon_sim::SimConfig;
use eucon_tasks::TaskSet;

use crate::plant::{Plant, PlantFactory};
use crate::CoreError;

/// `/proc` CPU-time tick rate.  `sysconf(_SC_CLK_TCK)` is 100 on every
/// mainstream Linux; reading it portably needs libc, which this crate
/// does not link.
const CLK_TCK: f64 = 100.0;

/// Configuration (and [`PlantFactory`]) for the real-OS backend.
///
/// ```no_run
/// use eucon_core::{LoopBuilder, OsPlantConfig};
/// use eucon_tasks::workloads;
/// use std::time::Duration;
///
/// # fn main() -> Result<(), eucon_core::CoreError> {
/// let mut cl = LoopBuilder::new(workloads::simple())
///     .plant(OsPlantConfig::new().wall_period(Duration::from_millis(250)))
///     .local()?;
/// cl.run(20); // ~5 s of wall clock against real worker processes
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct OsPlantConfig {
    wall_period: Duration,
    max_share: f64,
    require_cgroups: bool,
}

impl Default for OsPlantConfig {
    fn default() -> Self {
        OsPlantConfig {
            wall_period: Duration::from_millis(500),
            max_share: 0.5,
            require_cgroups: false,
        }
    }
}

impl OsPlantConfig {
    /// The defaults: 500 ms of wall clock per sampling period, a task at
    /// `Rmax` granted half a CPU, renice fallback allowed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wall-clock duration of one sampling period (default 500 ms).
    /// The loop's simulated-time arguments are ignored; real time is
    /// the clock here.
    pub fn wall_period(mut self, period: Duration) -> Self {
        self.wall_period = period;
        self
    }

    /// CPU fraction granted to a worker whose task runs at `Rmax`
    /// (default 0.5); lower rates scale the share proportionally.
    pub fn max_share(mut self, share: f64) -> Self {
        self.max_share = share;
        self
    }

    /// Fails construction (instead of falling back to `renice`) when no
    /// writable cgroup v2 CPU controller is found.
    pub fn require_cgroups(mut self, on: bool) -> Self {
        self.require_cgroups = on;
        self
    }

    /// Whether a writable cgroup v2 CPU controller is available to this
    /// process — the probe the Linux smoke test gates on.
    pub fn cgroups_available() -> bool {
        CgroupRoot::probe().is_some()
    }
}

impl PlantFactory for OsPlantConfig {
    fn build_plant(&self, set: &TaskSet, _sim: &SimConfig) -> Result<Box<dyn Plant>, CoreError> {
        Ok(Box::new(OsPlant::spawn(set, self.clone())?))
    }

    fn label(&self) -> &'static str {
        "os"
    }
}

/// A writable cgroup v2 subtree dedicated to one plant instance.
#[derive(Debug)]
struct CgroupRoot {
    dir: PathBuf,
}

impl CgroupRoot {
    /// Finds a writable cgroup v2 mount with the CPU controller and
    /// claims a fresh `eucon-<pid>` subtree under it; `None` when any
    /// step fails (non-Linux, cgroup v1, read-only delegation).
    fn probe() -> Option<CgroupRoot> {
        let base = PathBuf::from("/sys/fs/cgroup");
        let controllers = fs::read_to_string(base.join("cgroup.controllers")).ok()?;
        if !controllers.split_whitespace().any(|c| c == "cpu") {
            return None;
        }
        // Best effort: delegation may already be in place.
        let _ = fs::write(base.join("cgroup.subtree_control"), "+cpu");
        let dir = base.join(format!("eucon-{}", std::process::id()));
        fs::create_dir(&dir).ok()?;
        let _ = fs::write(dir.join("cgroup.subtree_control"), "+cpu");
        // The claim only counts if we can actually write a quota.
        let probe = dir.join("probe");
        let usable = fs::create_dir(&probe).is_ok()
            && fs::write(probe.join("cpu.max"), "max 100000").is_ok();
        let _ = fs::remove_dir(&probe);
        if usable {
            Some(CgroupRoot { dir })
        } else {
            let _ = fs::remove_dir(&dir);
            None
        }
    }

    /// Creates the per-worker leaf group and moves `pid` into it.
    fn adopt(&self, index: usize, pid: u32) -> Option<PathBuf> {
        let leaf = self.dir.join(format!("w{index}"));
        fs::create_dir(&leaf).ok()?;
        fs::write(leaf.join("cgroup.procs"), pid.to_string()).ok()?;
        Some(leaf)
    }
}

impl Drop for CgroupRoot {
    fn drop(&mut self) {
        // Leaves must be empty (workers killed first) for rmdir to work.
        if let Ok(entries) = fs::read_dir(&self.dir) {
            for e in entries.flatten() {
                let _ = fs::remove_dir(e.path());
            }
        }
        let _ = fs::remove_dir(&self.dir);
    }
}

/// One CPU-bound worker process standing in for a task.
#[derive(Debug)]
struct Worker {
    child: Child,
    /// Accounting group ("processor") this worker reports into: the
    /// task's head processor.
    processor: usize,
    /// cgroup leaf directory when quota actuation is active.
    cgroup: Option<PathBuf>,
    /// utime+stime ticks at the last sample.
    last_ticks: u64,
    /// Nice value currently applied (renice fallback only).
    nice: i32,
}

impl Worker {
    /// Total CPU ticks (utime + stime) consumed so far, from
    /// `/proc/<pid>/stat` (fields 14 and 15; parsed after the last `)`
    /// so command names with spaces cannot shift the split).
    fn cpu_ticks(&self) -> u64 {
        let path = format!("/proc/{}/stat", self.child.id());
        let Ok(stat) = fs::read_to_string(&path) else {
            return self.last_ticks; // worker died: utilization freezes at 0 delta
        };
        let Some(rest) = stat.rsplit_once(')').map(|(_, r)| r) else {
            return self.last_ticks;
        };
        let mut fields = rest.split_whitespace();
        let utime = fields.nth(11).and_then(|f| f.parse::<u64>().ok());
        let stime = fields.next().and_then(|f| f.parse::<u64>().ok());
        match (utime, stime) {
            (Some(u), Some(s)) => u + s,
            _ => self.last_ticks,
        }
    }
}

/// The real-OS [`Plant`]: see the [module docs](self).
#[derive(Debug)]
pub struct OsPlant {
    workers: Vec<Worker>,
    /// Rates in force, one per task (clamped into the task's range).
    rates: Vec<f64>,
    /// Per-task `(Rmin, Rmax)`.
    bounds: Vec<(f64, f64)>,
    num_processors: usize,
    cfg: OsPlantConfig,
    cgroups: Option<CgroupRoot>,
    /// Wall-clock start of the period being measured.
    period_start: Instant,
    /// Utilization of the last completed period, per processor.
    u_cache: Vec<f64>,
}

impl OsPlant {
    /// Spawns one busy-loop worker per task in `set` and applies the
    /// tasks' initial rates.
    ///
    /// # Errors
    ///
    /// [`CoreError::Config`] when a worker fails to spawn, or when
    /// [`OsPlantConfig::require_cgroups`] is set and no writable cgroup
    /// v2 CPU controller is found.
    pub fn spawn(set: &TaskSet, cfg: OsPlantConfig) -> Result<Self, CoreError> {
        if !(cfg.max_share > 0.0 && cfg.max_share <= 1.0) {
            return Err(CoreError::Config(format!(
                "os plant max_share must be in (0, 1], got {}",
                cfg.max_share
            )));
        }
        let cgroups = CgroupRoot::probe();
        if cfg.require_cgroups && cgroups.is_none() {
            return Err(CoreError::Config(
                "os plant: no writable cgroup v2 cpu controller (and require_cgroups is set)"
                    .into(),
            ));
        }
        let mut plant = OsPlant {
            workers: Vec::with_capacity(set.num_tasks()),
            rates: set.tasks().iter().map(|t| t.initial_rate()).collect(),
            bounds: set
                .tasks()
                .iter()
                .map(|t| (t.rate_min(), t.rate_max()))
                .collect(),
            num_processors: set.num_processors(),
            cfg,
            cgroups,
            period_start: Instant::now(),
            u_cache: vec![0.0; set.num_processors()],
        };
        for (i, task) in set.tasks().iter().enumerate() {
            let child = Command::new("sh")
                .arg("-c")
                .arg("while :; do :; done")
                .stdin(Stdio::null())
                .stdout(Stdio::null())
                .stderr(Stdio::null())
                .spawn()
                .map_err(|e| CoreError::Config(format!("os plant: spawning worker {i}: {e}")))?;
            let cgroup = plant
                .cgroups
                .as_ref()
                .and_then(|root| root.adopt(i, child.id()));
            plant.workers.push(Worker {
                child,
                processor: task.subtasks()[0].processor.0,
                cgroup,
                last_ticks: 0,
                nice: 0,
            });
        }
        for t in 0..plant.workers.len() {
            plant.workers[t].last_ticks = plant.workers[t].cpu_ticks();
            plant.actuate(t);
        }
        plant.period_start = Instant::now();
        Ok(plant)
    }

    /// Whether rate commands actuate through cgroup CPU quotas (`false`
    /// means the best-effort `renice` fallback).
    pub fn using_cgroups(&self) -> bool {
        self.cgroups.is_some()
    }

    /// The CPU share worker `t` should get at its current rate.
    fn share(&self, t: usize) -> f64 {
        let (_, rmax) = self.bounds[t];
        self.cfg.max_share * (self.rates[t] / rmax)
    }

    /// Pushes worker `t`'s share to the scheduler.
    fn actuate(&mut self, t: usize) {
        let share = self.share(t);
        if let Some(leaf) = &self.workers[t].cgroup {
            // cpu.max: "<quota> <period>" in microseconds.
            const PERIOD_US: f64 = 100_000.0;
            let quota = ((share * PERIOD_US) as u64).max(1_000);
            let _ = fs::write(leaf.join("cpu.max"), format!("{quota} 100000"));
        } else {
            // Fallback: map the share onto nice 19 (tiny) .. 0 (full).
            let nice = 19 - (share / self.cfg.max_share * 19.0).round() as i32;
            let nice = nice.clamp(0, 19);
            if nice != self.workers[t].nice {
                let pid = self.workers[t].child.id().to_string();
                let ok = Command::new("renice")
                    .args(["-n", &nice.to_string(), "-p", &pid])
                    .stdout(Stdio::null())
                    .stderr(Stdio::null())
                    .status()
                    .map(|s| s.success())
                    .unwrap_or(false);
                if ok {
                    self.workers[t].nice = nice;
                }
            }
        }
    }
}

impl Plant for OsPlant {
    fn name(&self) -> &'static str {
        "os"
    }

    fn num_processors(&self) -> usize {
        self.num_processors
    }

    fn num_tasks(&self) -> usize {
        self.workers.len()
    }

    /// Sleeps out the rest of the wall-clock period, then folds each
    /// worker's CPU-time delta into its processor's utilization.  The
    /// simulated-time argument is ignored: real time is the clock here.
    fn advance_to(&mut self, _t_end: f64) {
        let elapsed = self.period_start.elapsed();
        if elapsed < self.cfg.wall_period {
            std::thread::sleep(self.cfg.wall_period - elapsed);
        }
        let wall = self.period_start.elapsed().as_secs_f64();
        self.period_start = Instant::now();
        for u in &mut self.u_cache {
            *u = 0.0;
        }
        for t in 0..self.workers.len() {
            let ticks = self.workers[t].cpu_ticks();
            let delta = ticks.saturating_sub(self.workers[t].last_ticks);
            self.workers[t].last_ticks = ticks;
            let cpu_secs = delta as f64 / CLK_TCK;
            self.u_cache[self.workers[t].processor] += cpu_secs / wall;
        }
    }

    fn sample_into(&mut self, out: &mut Vector) {
        out.copy_from_slice(&self.u_cache);
    }

    fn apply_rates(&mut self, rates: &Vector) {
        for t in 0..self.rates.len() {
            let (lo, hi) = self.bounds[t];
            let clamped = rates[t].clamp(lo, hi);
            if clamped != self.rates[t] {
                self.rates[t] = clamped;
                self.actuate(t);
            }
        }
    }

    fn rates_in_force(&self) -> &[f64] {
        &self.rates
    }
}

impl Drop for OsPlant {
    fn drop(&mut self) {
        for w in &mut self.workers {
            let _ = w.child.kill();
            let _ = w.child.wait();
        }
        // `self.cgroups` drops after the workers are dead, so the leaf
        // rmdirs in `CgroupRoot::drop` find empty groups.
    }
}
