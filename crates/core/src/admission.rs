//! Integration of rate adaptation with admission control.
//!
//! Rate adaptation has a limit: when the overload is so severe that every
//! task already runs at `Rmin` and utilization still exceeds the set
//! points, no rate controller can help (paper §6.2: *"If the problem is
//! infeasible ... the system may switch to a different control adaptation
//! mechanism (e.g., admission control or task reallocation).  The
//! integration of multiple adaptation mechanisms is part of our future
//! work."*).
//!
//! [`AdaptiveLoop`] implements that integration: an EUCON feedback loop
//! whose supervisor suspends tasks when rate adaptation is exhausted and
//! re-admits them once headroom returns.
//!
//! Policy (documented in DESIGN.md):
//!
//! * **suspend** — if some processor stays above `B + margin` for
//!   `patience` consecutive periods while every active task contributing
//!   to it is pinned at `Rmin`, suspend the task with the largest
//!   estimated utilization contribution to the worst processor;
//! * **re-admit** — if every processor stays below `B − headroom` for
//!   `patience` consecutive periods, re-admit the most recently suspended
//!   task at its minimum rate (LIFO keeps reconfiguration local).
//!
//! Each admission change rebuilds the MPC controller over the active
//! subset (controllers are cheap: milliseconds even for large systems).

use eucon_control::{MpcConfig, MpcController};
use eucon_math::{Matrix, Vector};
use eucon_sim::{SimConfig, Simulator};
use eucon_tasks::{rms_set_points, TaskId, TaskSet};

use crate::{CoreError, Trace, TraceStep};

/// Tunable thresholds of the admission supervisor.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionPolicy {
    /// Overload margin above the set point that triggers suspension
    /// consideration.
    pub margin: f64,
    /// Consecutive periods a condition must hold before acting.
    pub patience: usize,
    /// Required distance below the set points before re-admission.
    pub readmit_headroom: f64,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        AdmissionPolicy {
            margin: 0.05,
            patience: 5,
            readmit_headroom: 0.1,
        }
    }
}

/// An admission decision taken by the supervisor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionEvent {
    /// A task was suspended at the given sampling period.
    Suspended {
        /// Sampling period of the decision.
        period: usize,
        /// The suspended task.
        task: TaskId,
    },
    /// A task was re-admitted at the given sampling period.
    Readmitted {
        /// Sampling period of the decision.
        period: usize,
        /// The re-admitted task.
        task: TaskId,
    },
}

/// EUCON + admission control: a closed loop whose supervisor can shrink
/// and re-grow the admitted task set when rate adaptation alone cannot
/// meet the utilization constraints.
///
/// # Example
///
/// ```
/// use eucon_core::admission::{AdaptiveLoop, AdmissionPolicy};
/// use eucon_control::MpcConfig;
/// use eucon_sim::SimConfig;
/// use eucon_tasks::workloads;
///
/// # fn main() -> Result<(), eucon_core::CoreError> {
/// let mut al = AdaptiveLoop::new(
///     workloads::simple(),
///     MpcConfig::simple(),
///     AdmissionPolicy::default(),
///     SimConfig::constant_etf(1.0),
/// )?;
/// al.run(20);
/// assert_eq!(al.suspended_tasks().len(), 0, "no admissions needed at etf 1");
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct AdaptiveLoop {
    sim: Simulator,
    set: TaskSet,
    f: Matrix,
    set_points: Vector,
    cfg: MpcConfig,
    policy: AdmissionPolicy,
    active: Vec<bool>,
    /// Stack of suspended tasks (most recent last).
    suspended: Vec<TaskId>,
    ctrl: MpcController,
    over_streak: usize,
    under_streak: usize,
    period: usize,
    ts: f64,
    trace: Trace,
    events: Vec<AdmissionEvent>,
}

impl AdaptiveLoop {
    /// Builds the loop with the RMS set points of the full task set.
    ///
    /// # Errors
    ///
    /// Propagates controller-construction failures.
    pub fn new(
        set: TaskSet,
        cfg: MpcConfig,
        policy: AdmissionPolicy,
        sim_config: SimConfig,
    ) -> Result<Self, CoreError> {
        let set_points = rms_set_points(&set);
        let f = set.allocation_matrix();
        let active = vec![true; set.num_tasks()];
        let sim = Simulator::new(set.clone(), sim_config);
        let ctrl = Self::build_controller(&set, &f, &set_points, &active, &sim, &cfg)?;
        Ok(AdaptiveLoop {
            sim,
            set,
            f,
            set_points,
            cfg,
            policy,
            active,
            suspended: Vec::new(),
            ctrl,
            over_streak: 0,
            under_streak: 0,
            period: 0,
            ts: crate::DEFAULT_SAMPLING_PERIOD,
            trace: Trace::new(),
            events: Vec::new(),
        })
    }

    /// Builds an MPC controller over the active subset of tasks.
    fn build_controller(
        set: &TaskSet,
        f: &Matrix,
        set_points: &Vector,
        active: &[bool],
        sim: &Simulator,
        cfg: &MpcConfig,
    ) -> Result<MpcController, CoreError> {
        let idx: Vec<usize> = (0..set.num_tasks()).filter(|&j| active[j]).collect();
        let f_sub = Matrix::from_fn(set.num_processors(), idx.len(), |r, c| f[(r, idx[c])]);
        let rates = sim.rates();
        let ctrl = MpcController::from_model(
            f_sub,
            set_points.clone(),
            Vector::from_iter(idx.iter().map(|&j| set.tasks()[j].rate_min())),
            Vector::from_iter(idx.iter().map(|&j| set.tasks()[j].rate_max())),
            Vector::from_iter(idx.iter().map(|&j| rates[j])),
            cfg.clone(),
        )?;
        Ok(ctrl)
    }

    /// Currently suspended tasks (most recently suspended last).
    pub fn suspended_tasks(&self) -> &[TaskId] {
        &self.suspended
    }

    /// All admission decisions taken so far.
    pub fn events(&self) -> &[AdmissionEvent] {
        &self.events
    }

    /// The recorded per-period trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The live simulator.
    pub fn simulator(&self) -> &Simulator {
        &self.sim
    }

    /// Runs one sampling period including the admission supervisor.
    ///
    /// # Panics
    ///
    /// Panics if the controller fails (cannot happen for valid
    /// configurations — the rate box is always feasible).
    pub fn step(&mut self) {
        self.period += 1;
        self.sim.run_until(self.period as f64 * self.ts);
        let u = self.sim.sample_utilizations();

        // Rate adaptation over the active subset.
        let idx: Vec<usize> = (0..self.set.num_tasks())
            .filter(|&j| self.active[j])
            .collect();
        if !idx.is_empty() {
            let r_sub = self
                .ctrl
                .step(&u)
                .expect("controller over a valid rate box");
            for (c, &j) in idx.iter().enumerate() {
                self.sim.set_rate(TaskId(j), r_sub[c]);
            }
        }

        self.trace.push(TraceStep::clean(
            self.period as f64 * self.ts,
            u.clone(),
            self.sim.rates(),
        ));

        self.supervise(&u);
    }

    /// Runs `periods` sampling periods.
    pub fn run(&mut self, periods: usize) {
        for _ in 0..periods {
            self.step();
        }
    }

    fn supervise(&mut self, u: &Vector) {
        let rates = self.sim.rates();

        // Overload: a processor above B + margin with its contributors
        // exhausted (at Rmin).
        let mut worst: Option<(usize, f64)> = None;
        for p in 0..u.len() {
            let excess = u[p] - (self.set_points[p] + self.policy.margin);
            if excess > 0.0 && worst.is_none_or(|(_, w)| excess > w) {
                worst = Some((p, excess));
            }
        }
        let exhausted_overload = worst.is_some_and(|(p, _)| {
            (0..self.set.num_tasks()).all(|j| {
                !self.active[j]
                    || self.f[(p, j)] == 0.0
                    || rates[j] <= self.set.tasks()[j].rate_min() * (1.0 + 1e-6)
            })
        });

        if exhausted_overload {
            self.over_streak += 1;
            self.under_streak = 0;
        } else {
            self.over_streak = 0;
            let all_headroom =
                (0..u.len()).all(|p| u[p] <= self.set_points[p] - self.policy.readmit_headroom);
            if all_headroom && !self.suspended.is_empty() {
                self.under_streak += 1;
            } else {
                self.under_streak = 0;
            }
        }

        if self.over_streak >= self.policy.patience {
            if let Some((p, _)) = worst {
                self.suspend_heaviest_on(p);
                self.over_streak = 0;
            }
        } else if self.under_streak >= self.policy.patience {
            self.readmit_last();
            self.under_streak = 0;
        }
    }

    fn suspend_heaviest_on(&mut self, p: usize) {
        let rates = self.sim.rates();
        let victim = (0..self.set.num_tasks())
            .filter(|&j| self.active[j] && self.f[(p, j)] > 0.0)
            .max_by(|&a, &b| (self.f[(p, a)] * rates[a]).total_cmp(&(self.f[(p, b)] * rates[b])));
        let Some(victim) = victim else {
            return;
        };
        // Never suspend the last active task.
        if self.active.iter().filter(|&&a| a).count() <= 1 {
            return;
        }
        self.active[victim] = false;
        self.suspended.push(TaskId(victim));
        self.sim.suspend_task(TaskId(victim));
        self.events.push(AdmissionEvent::Suspended {
            period: self.period,
            task: TaskId(victim),
        });
        self.rebuild();
    }

    fn readmit_last(&mut self) {
        let Some(task) = self.suspended.pop() else {
            return;
        };
        self.active[task.0] = true;
        // Gentle re-entry at the minimum acceptable rate.
        self.sim.set_rate(task, self.set.tasks()[task.0].rate_min());
        self.sim.resume_task(task);
        self.events.push(AdmissionEvent::Readmitted {
            period: self.period,
            task,
        });
        self.rebuild();
    }

    fn rebuild(&mut self) {
        self.ctrl = Self::build_controller(
            &self.set,
            &self.f,
            &self.set_points,
            &self.active,
            &self.sim,
            &self.cfg,
        )
        .expect("active subset keeps valid dimensions");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use eucon_sim::EtfProfile;
    use eucon_tasks::workloads;

    #[test]
    fn no_admission_activity_when_feasible() {
        let mut al = AdaptiveLoop::new(
            workloads::simple(),
            MpcConfig::simple(),
            AdmissionPolicy::default(),
            SimConfig::constant_etf(0.5),
        )
        .unwrap();
        al.run(100);
        assert!(al.events().is_empty());
        let s = metrics::window(&al.trace().utilization_series(0), 60, 100);
        assert!(
            (s.mean - 0.8284).abs() < 0.03,
            "normal EUCON behaviour preserved"
        );
    }

    #[test]
    fn severe_overload_triggers_suspension_and_recovery() {
        // etf = 25: even Rmin leaves estimated demand far above the set
        // points (max reduction is 20x for T1/T2), so rate adaptation is
        // exhausted and the supervisor must shed load.
        let mut al = AdaptiveLoop::new(
            workloads::simple(),
            MpcConfig::simple(),
            AdmissionPolicy::default(),
            SimConfig::constant_etf(25.0),
        )
        .unwrap();
        al.run(150);
        assert!(
            al.events()
                .iter()
                .any(|e| matches!(e, AdmissionEvent::Suspended { .. })),
            "supervisor must suspend under hopeless overload: {:?}",
            al.events()
        );
        // With enough load shed, the remaining tasks fit under the bound.
        let u1 = al.trace().utilization_series(0);
        let tail = metrics::window(&u1, 120, 150);
        assert!(
            tail.mean < 0.8284 + 0.06,
            "shedding must pull P1 back under its set point: {:.3}",
            tail.mean
        );
    }

    #[test]
    fn relief_readmits_suspended_tasks() {
        // Overload for 60 periods, then a huge relief: suspended tasks
        // must come back.
        let profile = EtfProfile::steps(&[(0.0, 25.0), (60_000.0, 0.5)]);
        let mut al = AdaptiveLoop::new(
            workloads::simple(),
            MpcConfig::simple(),
            AdmissionPolicy::default(),
            SimConfig {
                exec_model: eucon_sim::ExecModel::Constant,
                etf: profile,
                seed: 0,
                release_guard: Default::default(),
                processor_speeds: None,
            },
        )
        .unwrap();
        al.run(200);
        let suspensions = al
            .events()
            .iter()
            .filter(|e| matches!(e, AdmissionEvent::Suspended { .. }))
            .count();
        let readmissions = al
            .events()
            .iter()
            .filter(|e| matches!(e, AdmissionEvent::Readmitted { .. }))
            .count();
        assert!(suspensions > 0, "phase 1 must suspend: {:?}", al.events());
        assert!(readmissions > 0, "phase 2 must re-admit: {:?}", al.events());
        assert!(
            al.suspended_tasks().is_empty(),
            "all tasks back after relief: {:?}",
            al.suspended_tasks()
        );
        // And the loop converges normally afterwards.
        let u1 = al.trace().utilization_series(0);
        let tail = metrics::window(&u1, 160, 200);
        assert!(
            (tail.mean - 0.8284).abs() < 0.05,
            "tail mean {:.3}",
            tail.mean
        );
    }

    #[test]
    fn never_suspends_the_last_task() {
        // Single-task workload under hopeless overload: the supervisor
        // must keep it admitted.
        let mut set = TaskSet::new(1);
        let r = 1.0 / 100.0;
        set.add_task(
            eucon_tasks::Task::builder(r / 2.0, r * 2.0, r)
                .subtask(eucon_tasks::ProcessorId(0), 50.0)
                .build()
                .unwrap(),
        )
        .unwrap();
        let mut al = AdaptiveLoop::new(
            set,
            MpcConfig::simple(),
            AdmissionPolicy::default(),
            SimConfig::constant_etf(10.0),
        )
        .unwrap();
        al.run(60);
        assert!(al.suspended_tasks().is_empty());
    }
}
