//! Integration of rate adaptation with admission control.
//!
//! Rate adaptation has a limit: when the overload is so severe that every
//! task already runs at `Rmin` and utilization still exceeds the set
//! points, no rate controller can help (paper §6.2: *"If the problem is
//! infeasible ... the system may switch to a different control adaptation
//! mechanism (e.g., admission control or task reallocation).  The
//! integration of multiple adaptation mechanisms is part of our future
//! work."*).
//!
//! [`AdaptiveLoop`] implements that integration: an EUCON feedback loop
//! whose supervisor suspends tasks when rate adaptation is exhausted and
//! re-admits them once headroom returns.
//!
//! Policy (documented in DESIGN.md):
//!
//! * **suspend** — if some processor stays above `B + margin` for
//!   `patience` consecutive periods while every active task contributing
//!   to it is pinned at `Rmin`, suspend the task with the largest
//!   estimated utilization contribution to the worst processor;
//! * **re-admit** — if every processor stays below `B − headroom` for
//!   `patience` consecutive periods, re-admit the most recently suspended
//!   task at its minimum rate (LIFO keeps reconfiguration local).
//!
//! Each admission change rebuilds the MPC controller over the active
//! subset (controllers are cheap: milliseconds even for large systems).
//!
//! # Runtime churn
//!
//! Beyond load-shedding, this module also hosts the **runtime-membership**
//! side of admission control: a [`ChurnPlan`] scripts task arrivals,
//! departures and mode changes at given sampling periods, and an
//! [`AdmissionController`] executes it inside `ClosedLoop` — testing each
//! arrival against a utilization budget (paper §6.2's pointer to admission
//! control), growing/shrinking the MPC plant model incrementally via
//! [`RateController::membership_admit`] /
//! [`RateController::membership_retain`](eucon_control::RateController::membership_retain),
//! and deferring or rejecting arrivals the system cannot absorb.  Safe
//! mode freezes admissions: while a supervisory wrapper reports
//! [`ControlMode::Degraded`](eucon_control::ControlMode::Degraded), every
//! arrival is deferred until the primary law re-engages (or the deferral
//! limit rejects it).
//!
//! [`RateController::membership_admit`]: eucon_control::RateController::membership_admit

use eucon_control::{MpcConfig, MpcController};
use eucon_math::{Matrix, Vector};
use eucon_sim::{SimConfig, Simulator};
use eucon_tasks::{rms_set_points, Task, TaskId, TaskSet};

use crate::{CoreError, Trace, TraceStep};

/// Tunable thresholds of the admission supervisor.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionPolicy {
    /// Overload margin above the set point that triggers suspension
    /// consideration.
    pub margin: f64,
    /// Consecutive periods a condition must hold before acting.
    pub patience: usize,
    /// Required distance below the set points before re-admission.
    pub readmit_headroom: f64,
    /// Admission budget for runtime arrivals, as a fraction of each
    /// processor's set point: an arrival is admitted only if
    /// `u[p] + f_col[p] · r0 ≤ admit_threshold · B[p]` on every processor
    /// it touches (the paper's §6.2 utilization-threshold admission test).
    pub admit_threshold: f64,
    /// How many periods an arrival may be deferred (over budget, or safe
    /// mode freezing admissions) before it is rejected outright.
    pub defer_limit: usize,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        AdmissionPolicy {
            margin: 0.05,
            patience: 5,
            readmit_headroom: 0.1,
            admit_threshold: 1.0,
            defer_limit: 3,
        }
    }
}

/// Why a runtime arrival was rejected (or is being deferred).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// Projected utilization would exceed the admission budget on some
    /// processor (`u[p] + f_col[p] · r0 > admit_threshold · B[p]`).
    OverBudget,
    /// The controller cannot grow its plant model (no per-task model) —
    /// a task nobody can control must not enter the plant.
    ControllerRefused,
    /// Admissions were frozen in safe mode past the deferral limit.
    Degraded,
}

/// An admission decision taken by the supervisor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum AdmissionEvent {
    /// A task was suspended at the given sampling period.
    Suspended {
        /// Sampling period of the decision.
        period: usize,
        /// The suspended task.
        task: TaskId,
    },
    /// A task was re-admitted at the given sampling period.
    Readmitted {
        /// Sampling period of the decision.
        period: usize,
        /// The re-admitted task.
        task: TaskId,
    },
    /// A runtime arrival passed the admission test and joined the plant.
    Admitted {
        /// Sampling period of the decision.
        period: usize,
        /// The id the simulator assigned the new task.
        task: TaskId,
    },
    /// A runtime arrival was rejected.
    Rejected {
        /// Sampling period of the decision.
        period: usize,
        /// Why it was turned away.
        reason: RejectReason,
    },
    /// A runtime arrival was deferred (logged once, on first deferral).
    Deferred {
        /// Sampling period of the first deferral.
        period: usize,
    },
    /// A task departed at runtime (in-flight jobs drain cleanly).
    Departed {
        /// Sampling period of the departure.
        period: usize,
        /// The departed task.
        task: TaskId,
    },
    /// A task switched execution mode at runtime.
    ModeChanged {
        /// Sampling period of the mode change.
        period: usize,
        /// The task that changed mode.
        task: TaskId,
    },
}

/// A scripted runtime-membership change.
///
/// Task ids in [`ChurnEvent::Departure`] and [`ChurnEvent::ModeChange`]
/// are **plan-space** ids: the initial tasks keep their ids, and each
/// [`ChurnEvent::Arrival`] in the plan is assigned the next sequential id
/// in plan order — the same numbering the simulator uses when every
/// arrival is admitted.  If an arrival is rejected at runtime, later
/// events that target it become no-ops (the admission controller keeps a
/// plan-id → sim-id map).
#[derive(Debug, Clone, PartialEq)]
pub enum ChurnEvent {
    /// A new task arrives and requests admission.
    Arrival {
        /// Sampling period of the arrival.
        period: usize,
        /// The arriving task (subtasks, rate box, initial rate).
        task: Task,
    },
    /// A task departs permanently; in-flight jobs drain cleanly.
    Departure {
        /// Sampling period of the departure.
        period: usize,
        /// Plan-space id of the departing task.
        task: TaskId,
    },
    /// A task switches execution mode: future jobs take
    /// `scale ×` their estimated execution time.
    ModeChange {
        /// Sampling period of the mode change.
        period: usize,
        /// Plan-space id of the task.
        task: TaskId,
        /// New execution-time multiplier (`1.0` = nominal).
        scale: f64,
    },
}

impl ChurnEvent {
    /// The sampling period at which the event fires.
    pub fn period(&self) -> usize {
        match self {
            ChurnEvent::Arrival { period, .. }
            | ChurnEvent::Departure { period, .. }
            | ChurnEvent::ModeChange { period, .. } => *period,
        }
    }
}

/// A scripted sequence of runtime-membership changes, executed by the
/// closed loop's [`AdmissionController`].
///
/// Built fluently ([`ChurnPlan::arrival`], [`ChurnPlan::departure`],
/// [`ChurnPlan::mode_change`]) or generated stochastically
/// ([`ChurnPlan::poisson`]).  An **empty plan is byte-identical to no
/// plan at all**: the loop builder only engages the churn machinery for
/// non-empty plans, so churn-free runs keep their golden traces
/// bit-for-bit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ChurnPlan {
    events: Vec<ChurnEvent>,
}

impl ChurnPlan {
    /// The empty plan: a static task set.
    pub fn none() -> Self {
        ChurnPlan::default()
    }

    /// Whether the plan contains no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scripted events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// The scripted events, in insertion order.
    pub fn events(&self) -> &[ChurnEvent] {
        &self.events
    }

    /// Schedules a task arrival at `period`.
    pub fn arrival(mut self, period: usize, task: Task) -> Self {
        self.events.push(ChurnEvent::Arrival { period, task });
        self
    }

    /// Schedules the departure of plan-space task `task` at `period`.
    pub fn departure(mut self, period: usize, task: TaskId) -> Self {
        self.events.push(ChurnEvent::Departure { period, task });
        self
    }

    /// Schedules a mode change of plan-space task `task` at `period`.
    pub fn mode_change(mut self, period: usize, task: TaskId, scale: f64) -> Self {
        self.events.push(ChurnEvent::ModeChange {
            period,
            task,
            scale,
        });
        self
    }

    /// Validates the plan against the initial task set: arrival subtasks
    /// name deployed processors, departure / mode-change targets are
    /// plan-space ids that exist (initial tasks plus scheduled arrivals),
    /// and mode scales are positive and finite.
    ///
    /// The loop builders call this, so a malformed plan fails the build
    /// with a typed error instead of panicking mid-run.
    ///
    /// # Errors
    ///
    /// [`CoreError::Task`] for out-of-range arrival processors,
    /// [`CoreError::Config`] for dangling ids or bad mode scales.
    pub fn validate(&self, set: &TaskSet) -> Result<(), CoreError> {
        let id_space = set.num_tasks()
            + self
                .events
                .iter()
                .filter(|e| matches!(e, ChurnEvent::Arrival { .. }))
                .count();
        for ev in &self.events {
            match ev {
                ChurnEvent::Arrival { task, .. } => {
                    for s in task.subtasks() {
                        if s.processor.0 >= set.num_processors() {
                            return Err(CoreError::Task(
                                eucon_tasks::TaskError::ProcessorOutOfRange {
                                    processor: s.processor.0,
                                    num_processors: set.num_processors(),
                                },
                            ));
                        }
                    }
                }
                ChurnEvent::Departure { period, task } => {
                    if task.0 >= id_space {
                        return Err(CoreError::Config(format!(
                            "churn departure at period {period} targets task {} \
                             but only {id_space} plan-space ids exist",
                            task.0
                        )));
                    }
                }
                ChurnEvent::ModeChange {
                    period,
                    task,
                    scale,
                } => {
                    if task.0 >= id_space {
                        return Err(CoreError::Config(format!(
                            "churn mode change at period {period} targets task {} \
                             but only {id_space} plan-space ids exist",
                            task.0
                        )));
                    }
                    if !(*scale > 0.0 && scale.is_finite()) {
                        return Err(CoreError::Config(format!(
                            "churn mode change at period {period} has \
                             non-positive or non-finite scale {scale}"
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// Generates a stochastic churn plan: per sampling period in
    /// `1..periods`, a new task arrives with probability `p_arrival`
    /// (cloning a uniformly drawn template from `set`) and a uniformly
    /// drawn live task departs with probability `p_departure`
    /// (Bernoulli-thinned Poisson processes — geometric inter-event
    /// times).  The last live task never departs.
    ///
    /// Deterministic given `seed`; probabilities are clamped into
    /// `[0, 1]`.
    pub fn poisson(
        set: &TaskSet,
        periods: usize,
        p_arrival: f64,
        p_departure: f64,
        seed: u64,
    ) -> Self {
        let p_arrival = p_arrival.clamp(0.0, 1.0);
        let p_departure = p_departure.clamp(0.0, 1.0);
        let mut rng = SplitMix64::new(seed);
        let templates = set.tasks();
        let mut alive: Vec<TaskId> = (0..set.num_tasks()).map(TaskId).collect();
        let mut next_id = set.num_tasks();
        let mut plan = ChurnPlan::default();
        for period in 1..periods {
            if !templates.is_empty() && rng.f64() < p_arrival {
                let t = templates[rng.below(templates.len())].clone();
                plan.events.push(ChurnEvent::Arrival { period, task: t });
                alive.push(TaskId(next_id));
                next_id += 1;
            }
            if alive.len() > 1 && rng.f64() < p_departure {
                let victim = alive.swap_remove(rng.below(alive.len()));
                plan.events.push(ChurnEvent::Departure {
                    period,
                    task: victim,
                });
            }
        }
        plan
    }
}

/// Minimal inline PRNG for [`ChurnPlan::poisson`] (Vigna's SplitMix64) —
/// plan generation is configuration, not simulation, so it does not share
/// the simulator's `StdRng` stream.
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `0..n` (`n > 0`; modulo bias is irrelevant here).
    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// Cumulative runtime-membership activity of one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChurnSummary {
    /// Arrivals that passed the admission test.
    pub admitted: u64,
    /// Arrivals turned away for good.
    pub rejected: u64,
    /// Arrival-periods spent deferred (one arrival deferred for three
    /// periods counts three).
    pub deferred: u64,
    /// Tasks departed.
    pub departed: u64,
    /// Mode changes applied.
    pub mode_changes: u64,
    /// Plant-model membership updates the controller absorbed in place
    /// (warm state migrated).
    pub incremental_updates: u64,
    /// Plant-model membership updates that fell back to a full rebuild.
    pub model_rebuilds: u64,
}

impl ChurnSummary {
    pub(crate) fn add(&mut self, other: &ChurnSummary) {
        self.admitted += other.admitted;
        self.rejected += other.rejected;
        self.deferred += other.deferred;
        self.departed += other.departed;
        self.mode_changes += other.mode_changes;
        self.incremental_updates += other.incremental_updates;
        self.model_rebuilds += other.model_rebuilds;
    }
}

/// An arrival waiting out a deferral (over budget or safe mode).
#[derive(Debug, Clone)]
pub(crate) struct PendingArrival {
    pub(crate) plan_id: usize,
    pub(crate) task: Task,
    pub(crate) age: usize,
}

/// Executes a [`ChurnPlan`] inside a closed loop: bookkeeping for the
/// admission test, the deferral queue, the plan-id → sim-id map and the
/// per-period telemetry deltas.  The loop itself drives the simulator and
/// controller; this type owns the decisions' state.
///
/// Constructed by the loop builders when a non-empty plan (or an explicit
/// admission policy) is supplied; not built directly.
#[derive(Debug)]
pub struct AdmissionController {
    pub(crate) policy: AdmissionPolicy,
    /// Scripted events, stably sorted by period.
    pub(crate) events: Vec<ChurnEvent>,
    pub(crate) cursor: usize,
    pub(crate) pending: Vec<PendingArrival>,
    /// Plan-space id → sim id (`None` = rejected arrival).
    pub(crate) plan_map: Vec<Option<TaskId>>,
    pub(crate) log: Vec<AdmissionEvent>,
    pub(crate) summary: ChurnSummary,
    /// This period's deltas (folded into telemetry each period).
    pub(crate) period_delta: ChurnSummary,
    /// Plant-model update latencies observed this period, in nanoseconds.
    pub(crate) update_ns: Vec<u64>,
    /// Scratch: the arriving task's allocation-matrix column.
    pub(crate) f_col: Vec<f64>,
    /// Scratch: the retain mask handed to the controller on departures.
    pub(crate) keep_scratch: Vec<bool>,
}

impl AdmissionController {
    pub(crate) fn new(policy: AdmissionPolicy, plan: ChurnPlan, initial_tasks: usize) -> Self {
        let mut events = plan.events;
        events.sort_by_key(ChurnEvent::period);
        AdmissionController {
            policy,
            events,
            cursor: 0,
            pending: Vec::new(),
            plan_map: (0..initial_tasks).map(|t| Some(TaskId(t))).collect(),
            log: Vec::new(),
            summary: ChurnSummary::default(),
            period_delta: ChurnSummary::default(),
            update_ns: Vec::new(),
            f_col: Vec::new(),
            keep_scratch: Vec::new(),
        }
    }

    /// Clears the per-period telemetry scratch.  Allocation-free.
    pub(crate) fn begin_period(&mut self) {
        self.period_delta = ChurnSummary::default();
        self.update_ns.clear();
    }

    /// Whether any work is possible at period `k` (cheap steady-state
    /// gate: no pending deferrals and no event due).
    pub(crate) fn idle(&self, k: usize) -> bool {
        self.pending.is_empty() && self.events.get(self.cursor).is_none_or(|e| e.period() > k)
    }

    /// Resolves a plan-space id to the sim id it was admitted under.
    pub(crate) fn resolve(&self, plan: TaskId) -> Option<TaskId> {
        self.plan_map.get(plan.0).copied().flatten()
    }

    /// Records a plant-model membership update and its latency.
    pub(crate) fn note_update(&mut self, update: eucon_control::ModelUpdate, ns: u64) {
        match update {
            eucon_control::ModelUpdate::Incremental => {
                self.summary.incremental_updates += 1;
                self.period_delta.incremental_updates += 1;
            }
            eucon_control::ModelUpdate::Rebuild => {
                self.summary.model_rebuilds += 1;
                self.period_delta.model_rebuilds += 1;
            }
        }
        self.update_ns.push(ns);
    }

    /// All membership decisions taken so far, in order.
    pub fn log(&self) -> &[AdmissionEvent] {
        &self.log
    }

    /// Cumulative membership activity.
    pub fn summary(&self) -> ChurnSummary {
        self.summary
    }
}

/// EUCON + admission control: a closed loop whose supervisor can shrink
/// and re-grow the admitted task set when rate adaptation alone cannot
/// meet the utilization constraints.
///
/// # Example
///
/// ```
/// use eucon_core::admission::{AdaptiveLoop, AdmissionPolicy};
/// use eucon_control::MpcConfig;
/// use eucon_sim::SimConfig;
/// use eucon_tasks::workloads;
///
/// # fn main() -> Result<(), eucon_core::CoreError> {
/// let mut al = AdaptiveLoop::new(
///     workloads::simple(),
///     MpcConfig::simple(),
///     AdmissionPolicy::default(),
///     SimConfig::constant_etf(1.0),
/// )?;
/// al.run(20);
/// assert_eq!(al.suspended_tasks().len(), 0, "no admissions needed at etf 1");
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct AdaptiveLoop {
    sim: Simulator,
    set: TaskSet,
    f: Matrix,
    set_points: Vector,
    cfg: MpcConfig,
    policy: AdmissionPolicy,
    active: Vec<bool>,
    /// Stack of suspended tasks (most recent last).
    suspended: Vec<TaskId>,
    ctrl: MpcController,
    over_streak: usize,
    under_streak: usize,
    period: usize,
    ts: f64,
    trace: Trace,
    events: Vec<AdmissionEvent>,
}

impl AdaptiveLoop {
    /// Builds the loop with the RMS set points of the full task set.
    ///
    /// # Errors
    ///
    /// Propagates controller-construction failures.
    pub fn new(
        set: TaskSet,
        cfg: MpcConfig,
        policy: AdmissionPolicy,
        sim_config: SimConfig,
    ) -> Result<Self, CoreError> {
        let set_points = rms_set_points(&set);
        let f = set.allocation_matrix();
        let active = vec![true; set.num_tasks()];
        let sim = Simulator::new(set.clone(), sim_config);
        let ctrl = Self::build_controller(&set, &f, &set_points, &active, &sim, &cfg)?;
        Ok(AdaptiveLoop {
            sim,
            set,
            f,
            set_points,
            cfg,
            policy,
            active,
            suspended: Vec::new(),
            ctrl,
            over_streak: 0,
            under_streak: 0,
            period: 0,
            ts: crate::DEFAULT_SAMPLING_PERIOD,
            trace: Trace::new(),
            events: Vec::new(),
        })
    }

    /// Builds an MPC controller over the active subset of tasks.
    fn build_controller(
        set: &TaskSet,
        f: &Matrix,
        set_points: &Vector,
        active: &[bool],
        sim: &Simulator,
        cfg: &MpcConfig,
    ) -> Result<MpcController, CoreError> {
        let idx: Vec<usize> = (0..set.num_tasks()).filter(|&j| active[j]).collect();
        let f_sub = Matrix::from_fn(set.num_processors(), idx.len(), |r, c| f[(r, idx[c])]);
        let rates = sim.rates();
        let ctrl = MpcController::from_model(
            f_sub,
            set_points.clone(),
            Vector::from_iter(idx.iter().map(|&j| set.tasks()[j].rate_min())),
            Vector::from_iter(idx.iter().map(|&j| set.tasks()[j].rate_max())),
            Vector::from_iter(idx.iter().map(|&j| rates[j])),
            cfg.clone(),
        )?;
        Ok(ctrl)
    }

    /// Currently suspended tasks (most recently suspended last).
    pub fn suspended_tasks(&self) -> &[TaskId] {
        &self.suspended
    }

    /// All admission decisions taken so far.
    pub fn events(&self) -> &[AdmissionEvent] {
        &self.events
    }

    /// The recorded per-period trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The live simulator.
    pub fn simulator(&self) -> &Simulator {
        &self.sim
    }

    /// Runs one sampling period including the admission supervisor.
    ///
    /// # Panics
    ///
    /// Panics if the controller fails (cannot happen for valid
    /// configurations — the rate box is always feasible).
    pub fn step(&mut self) {
        self.period += 1;
        self.sim.run_until(self.period as f64 * self.ts);
        let u = self.sim.sample_utilizations();

        // Rate adaptation over the active subset.
        let idx: Vec<usize> = (0..self.set.num_tasks())
            .filter(|&j| self.active[j])
            .collect();
        if !idx.is_empty() {
            let r_sub = self
                .ctrl
                .step(&u)
                .expect("controller over a valid rate box");
            for (c, &j) in idx.iter().enumerate() {
                self.sim.set_rate(TaskId(j), r_sub[c]);
            }
        }

        self.trace.push(TraceStep::clean(
            self.period as f64 * self.ts,
            u.clone(),
            self.sim.rates(),
        ));

        self.supervise(&u);
    }

    /// Runs `periods` sampling periods.
    pub fn run(&mut self, periods: usize) {
        for _ in 0..periods {
            self.step();
        }
    }

    fn supervise(&mut self, u: &Vector) {
        let rates = self.sim.rates();

        // Overload: a processor above B + margin with its contributors
        // exhausted (at Rmin).
        let mut worst: Option<(usize, f64)> = None;
        for p in 0..u.len() {
            let excess = u[p] - (self.set_points[p] + self.policy.margin);
            if excess > 0.0 && worst.is_none_or(|(_, w)| excess > w) {
                worst = Some((p, excess));
            }
        }
        let exhausted_overload = worst.is_some_and(|(p, _)| {
            (0..self.set.num_tasks()).all(|j| {
                !self.active[j]
                    || self.f[(p, j)] == 0.0
                    || rates[j] <= self.set.tasks()[j].rate_min() * (1.0 + 1e-6)
            })
        });

        if exhausted_overload {
            self.over_streak += 1;
            self.under_streak = 0;
        } else {
            self.over_streak = 0;
            let all_headroom =
                (0..u.len()).all(|p| u[p] <= self.set_points[p] - self.policy.readmit_headroom);
            if all_headroom && !self.suspended.is_empty() {
                self.under_streak += 1;
            } else {
                self.under_streak = 0;
            }
        }

        if self.over_streak >= self.policy.patience {
            if let Some((p, _)) = worst {
                self.suspend_heaviest_on(p);
                self.over_streak = 0;
            }
        } else if self.under_streak >= self.policy.patience {
            self.readmit_last();
            self.under_streak = 0;
        }
    }

    fn suspend_heaviest_on(&mut self, p: usize) {
        let rates = self.sim.rates();
        let victim = (0..self.set.num_tasks())
            .filter(|&j| self.active[j] && self.f[(p, j)] > 0.0)
            .max_by(|&a, &b| (self.f[(p, a)] * rates[a]).total_cmp(&(self.f[(p, b)] * rates[b])));
        let Some(victim) = victim else {
            return;
        };
        // Never suspend the last active task.
        if self.active.iter().filter(|&&a| a).count() <= 1 {
            return;
        }
        self.active[victim] = false;
        self.suspended.push(TaskId(victim));
        self.sim.suspend_task(TaskId(victim));
        self.events.push(AdmissionEvent::Suspended {
            period: self.period,
            task: TaskId(victim),
        });
        self.rebuild();
    }

    fn readmit_last(&mut self) {
        let Some(task) = self.suspended.pop() else {
            return;
        };
        self.active[task.0] = true;
        // Gentle re-entry at the minimum acceptable rate.
        self.sim.set_rate(task, self.set.tasks()[task.0].rate_min());
        self.sim.resume_task(task);
        self.events.push(AdmissionEvent::Readmitted {
            period: self.period,
            task,
        });
        self.rebuild();
    }

    fn rebuild(&mut self) {
        self.ctrl = Self::build_controller(
            &self.set,
            &self.f,
            &self.set_points,
            &self.active,
            &self.sim,
            &self.cfg,
        )
        .expect("active subset keeps valid dimensions");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use eucon_sim::EtfProfile;
    use eucon_tasks::workloads;

    #[test]
    fn no_admission_activity_when_feasible() {
        let mut al = AdaptiveLoop::new(
            workloads::simple(),
            MpcConfig::simple(),
            AdmissionPolicy::default(),
            SimConfig::constant_etf(0.5),
        )
        .unwrap();
        al.run(100);
        assert!(al.events().is_empty());
        let s = metrics::window(&al.trace().utilization_series(0), 60, 100);
        assert!(
            (s.mean - 0.8284).abs() < 0.03,
            "normal EUCON behaviour preserved"
        );
    }

    #[test]
    fn severe_overload_triggers_suspension_and_recovery() {
        // etf = 25: even Rmin leaves estimated demand far above the set
        // points (max reduction is 20x for T1/T2), so rate adaptation is
        // exhausted and the supervisor must shed load.
        let mut al = AdaptiveLoop::new(
            workloads::simple(),
            MpcConfig::simple(),
            AdmissionPolicy::default(),
            SimConfig::constant_etf(25.0),
        )
        .unwrap();
        al.run(150);
        assert!(
            al.events()
                .iter()
                .any(|e| matches!(e, AdmissionEvent::Suspended { .. })),
            "supervisor must suspend under hopeless overload: {:?}",
            al.events()
        );
        // With enough load shed, the remaining tasks fit under the bound.
        let u1 = al.trace().utilization_series(0);
        let tail = metrics::window(&u1, 120, 150);
        assert!(
            tail.mean < 0.8284 + 0.06,
            "shedding must pull P1 back under its set point: {:.3}",
            tail.mean
        );
    }

    #[test]
    fn relief_readmits_suspended_tasks() {
        // Overload for 60 periods, then a huge relief: suspended tasks
        // must come back.
        let profile = EtfProfile::steps(&[(0.0, 25.0), (60_000.0, 0.5)]);
        let mut al = AdaptiveLoop::new(
            workloads::simple(),
            MpcConfig::simple(),
            AdmissionPolicy::default(),
            SimConfig {
                exec_model: eucon_sim::ExecModel::Constant,
                etf: profile,
                seed: 0,
                release_guard: Default::default(),
                processor_speeds: None,
            },
        )
        .unwrap();
        al.run(200);
        let suspensions = al
            .events()
            .iter()
            .filter(|e| matches!(e, AdmissionEvent::Suspended { .. }))
            .count();
        let readmissions = al
            .events()
            .iter()
            .filter(|e| matches!(e, AdmissionEvent::Readmitted { .. }))
            .count();
        assert!(suspensions > 0, "phase 1 must suspend: {:?}", al.events());
        assert!(readmissions > 0, "phase 2 must re-admit: {:?}", al.events());
        assert!(
            al.suspended_tasks().is_empty(),
            "all tasks back after relief: {:?}",
            al.suspended_tasks()
        );
        // And the loop converges normally afterwards.
        let u1 = al.trace().utilization_series(0);
        let tail = metrics::window(&u1, 160, 200);
        assert!(
            (tail.mean - 0.8284).abs() < 0.05,
            "tail mean {:.3}",
            tail.mean
        );
    }

    #[test]
    fn never_suspends_the_last_task() {
        // Single-task workload under hopeless overload: the supervisor
        // must keep it admitted.
        let mut set = TaskSet::new(1);
        let r = 1.0 / 100.0;
        set.add_task(
            eucon_tasks::Task::builder(r / 2.0, r * 2.0, r)
                .subtask(eucon_tasks::ProcessorId(0), 50.0)
                .build()
                .unwrap(),
        )
        .unwrap();
        let mut al = AdaptiveLoop::new(
            set,
            MpcConfig::simple(),
            AdmissionPolicy::default(),
            SimConfig::constant_etf(10.0),
        )
        .unwrap();
        al.run(60);
        assert!(al.suspended_tasks().is_empty());
    }

    fn sample_task() -> Task {
        let r = 1.0 / 100.0;
        eucon_tasks::Task::builder(r / 2.0, r * 2.0, r)
            .subtask(eucon_tasks::ProcessorId(0), 10.0)
            .build()
            .unwrap()
    }

    #[test]
    fn churn_plan_validates_ids_processors_and_scales() {
        let set = workloads::simple(); // 3 tasks, 2 processors
        assert!(ChurnPlan::none().validate(&set).is_ok());
        // One arrival extends the plan-space to ids 0..=3.
        let plan = ChurnPlan::none()
            .arrival(10, sample_task())
            .departure(20, TaskId(3))
            .mode_change(30, TaskId(0), 2.0);
        assert!(plan.validate(&set).is_ok());
        // Dangling departure target.
        let plan = ChurnPlan::none().departure(20, TaskId(4));
        assert!(matches!(
            plan.validate(&set),
            Err(CoreError::Config(msg)) if msg.contains("task 4")
        ));
        // Arrival naming an undeployed processor.
        let bad = eucon_tasks::Task::builder(0.005, 0.02, 0.01)
            .subtask(eucon_tasks::ProcessorId(9), 10.0)
            .build()
            .unwrap();
        let plan = ChurnPlan::none().arrival(5, bad);
        assert!(matches!(plan.validate(&set), Err(CoreError::Task(_))));
        // Bad mode scale.
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let plan = ChurnPlan::none().mode_change(5, TaskId(0), bad);
            assert!(plan.validate(&set).is_err(), "{bad}");
        }
    }

    #[test]
    fn poisson_plans_are_seed_deterministic_and_keep_one_task() {
        let set = workloads::simple();
        let a = ChurnPlan::poisson(&set, 500, 0.05, 0.05, 42);
        let b = ChurnPlan::poisson(&set, 500, 0.05, 0.05, 42);
        assert_eq!(a, b, "same seed, same plan");
        let c = ChurnPlan::poisson(&set, 500, 0.05, 0.05, 43);
        assert_ne!(a, c, "different seed, different plan");
        assert!(!a.is_empty(), "500 periods at 5% must produce events");
        assert!(a.validate(&set).is_ok(), "generated plans are well-formed");
        // Replaying departures against the alive set never empties it.
        let mut alive: std::collections::HashSet<usize> = (0..set.num_tasks()).collect();
        let mut next = set.num_tasks();
        for ev in a.events() {
            match ev {
                ChurnEvent::Arrival { .. } => {
                    alive.insert(next);
                    next += 1;
                }
                ChurnEvent::Departure { task, .. } => {
                    assert!(alive.remove(&task.0), "departs a live task");
                    assert!(!alive.is_empty(), "never departs the last task");
                }
                ChurnEvent::ModeChange { .. } => {}
            }
        }
    }

    #[test]
    fn admission_controller_sorts_events_and_maps_initial_ids() {
        let plan = ChurnPlan::none()
            .departure(30, TaskId(1))
            .arrival(10, sample_task());
        let ac = AdmissionController::new(AdmissionPolicy::default(), plan, 3);
        assert_eq!(ac.events[0].period(), 10, "events sorted by period");
        assert_eq!(ac.resolve(TaskId(2)), Some(TaskId(2)));
        assert_eq!(
            ac.resolve(TaskId(7)),
            None,
            "unknown plan ids resolve to None"
        );
        assert!(ac.idle(5), "nothing due before the first event");
        assert!(!ac.idle(10), "arrival due at period 10");
        assert_eq!(ac.summary(), ChurnSummary::default());
        assert!(ac.log().is_empty());
    }
}
