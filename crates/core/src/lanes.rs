//! Feedback-lane network model.
//!
//! The paper's architecture (§4) connects the controller to each
//! processor's utilization monitor and rate modulator through a dedicated
//! TCP connection (a *feedback lane*) and ignores network effects in its
//! evaluation.  This module models what the paper abstracts away, so the
//! robustness of the loop to realistic lanes can be measured:
//!
//! * **report delay** — utilization samples arrive `d` sampling periods
//!   late (the controller acts on `u(k − d)`);
//! * **report loss** — with probability `p` a period's report is dropped,
//!   in which case the controller re-uses the last delivered sample
//!   (TCP-style: the stale value persists rather than vanishing).
//!
//! The closed loop applies the model symmetrically cheaply: delayed
//! reports are the dominant effect, and actuation delay composes into the
//! same loop delay, so a single `report_delay` knob captures both.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

use eucon_math::Vector;

/// Configuration of the feedback lanes between monitors and controller.
#[derive(Debug, Clone, PartialEq)]
pub struct LaneModel {
    /// Whole sampling periods of delay on utilization reports (0 = the
    /// paper's idealized lanes).
    pub report_delay: usize,
    /// Probability that a period's report is lost, in `[0, 1)`.
    pub loss_probability: f64,
    /// RNG seed for loss draws.
    pub seed: u64,
}

impl LaneModel {
    /// The paper's idealization: zero delay, zero loss.
    pub fn ideal() -> Self {
        LaneModel {
            report_delay: 0,
            loss_probability: 0.0,
            seed: 0,
        }
    }

    /// Lanes with a fixed report delay (in sampling periods).
    pub fn delayed(periods: usize) -> Self {
        LaneModel {
            report_delay: periods,
            ..LaneModel::ideal()
        }
    }

    /// Lanes dropping each report independently with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p < 1`.
    pub fn lossy(p: f64, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "loss probability must be in [0, 1)"
        );
        LaneModel {
            report_delay: 0,
            loss_probability: p,
            seed,
        }
    }
}

impl Default for LaneModel {
    fn default() -> Self {
        LaneModel::ideal()
    }
}

/// Run-time state of the lane model inside a closed loop.
///
/// Public as the *reference semantics* of a delayed/lossy lane: the
/// transport-level `DelayLoss` middleware in `eucon-net` must agree with
/// this model draw-for-draw (the transport-equivalence property tests
/// compare the two directly), so a distributed loop over real lanes and
/// a single-process loop over [`LaneModel`] see the same network.
#[derive(Debug)]
pub struct LaneState {
    model: LaneModel,
    rng: StdRng,
    /// Reports in flight (oldest first); length ≤ report_delay + 1.
    in_flight: VecDeque<Vector>,
    /// Last report actually delivered to the controller.
    last_delivered: Option<Vector>,
}

impl LaneState {
    /// Fresh lane state for a model (seeds the loss RNG).
    pub fn new(model: LaneModel) -> Self {
        LaneState {
            rng: StdRng::seed_from_u64(model.seed),
            model,
            in_flight: VecDeque::new(),
            last_delivered: None,
        }
    }

    /// Pushes this period's measurement and returns what the controller
    /// receives.
    ///
    /// Borrows the fresh measurement: `None` means the lane delivered it
    /// unchanged this period (the caller keeps using its own vector — the
    /// ideal-lane hot path never clones), `Some(v)` carries a mutated
    /// delivery (delayed or stale report).
    ///
    /// Call exactly once per sampling period — the loss draws are
    /// consumed in period order.
    pub fn transmit(&mut self, fresh: &Vector) -> Option<Vector> {
        if self.model.report_delay == 0 && self.model.loss_probability == 0.0 {
            // Ideal lanes: transparent, allocation-free.
            return None;
        }
        self.in_flight.push_back(fresh.clone());
        let candidate = if self.in_flight.len() > self.model.report_delay {
            self.in_flight.pop_front()
        } else {
            // Nothing has crossed the lane yet.
            None
        };
        match candidate {
            Some(report) => {
                let lost = self.model.loss_probability > 0.0
                    && self.rng.gen::<f64>() < self.model.loss_probability;
                if lost {
                    // Drop: the controller keeps the previous value.
                    Some(
                        self.last_delivered
                            .clone()
                            .unwrap_or_else(|| report.map(|_| 0.0)),
                    )
                } else {
                    let unchanged = self.model.report_delay == 0;
                    self.last_delivered = Some(report.clone());
                    if unchanged {
                        None
                    } else {
                        Some(report)
                    }
                }
            }
            None => Some(
                self.last_delivered
                    .clone()
                    .unwrap_or_else(|| Vector::zeros(fresh.len())),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: f64) -> Vector {
        Vector::from_slice(&[x])
    }

    /// What the controller ends up seeing for a transmission.
    fn seen(lane: &mut LaneState, x: f64) -> f64 {
        let fresh = v(x);
        lane.transmit(&fresh).unwrap_or(fresh)[0]
    }

    #[test]
    fn ideal_lane_is_transparent_without_cloning() {
        let mut lane = LaneState::new(LaneModel::ideal());
        // `None` = delivered unchanged; the caller's vector is the delivery.
        assert!(lane.transmit(&v(0.5)).is_none());
        assert!(lane.transmit(&v(0.7)).is_none());
    }

    #[test]
    fn delay_shifts_reports() {
        let mut lane = LaneState::new(LaneModel::delayed(2));
        // Until the pipe fills, the controller sees zeros.
        assert_eq!(seen(&mut lane, 0.1), 0.0);
        assert_eq!(seen(&mut lane, 0.2), 0.0);
        // Then reports arrive in order, two periods late.
        assert_eq!(seen(&mut lane, 0.3), 0.1);
        assert_eq!(seen(&mut lane, 0.4), 0.2);
    }

    #[test]
    fn total_loss_freezes_the_last_delivery() {
        // p ≈ 1 is rejected, but a high p with a seed that always drops
        // after the first delivery shows the stale-value behaviour.
        let mut lane = LaneState::new(LaneModel {
            report_delay: 0,
            loss_probability: 0.99,
            seed: 3,
        });
        let first = seen(&mut lane, 0.5);
        // All subsequent values are frozen at whatever got through (0.5 or
        // 0.0 if even the first was dropped).
        for _ in 0..20 {
            let got = seen(&mut lane, 0.9);
            assert!(got == first || got == 0.5 || got == 0.0);
            assert_ne!(
                got, 0.9,
                "a 99% lossy lane should effectively never deliver"
            );
        }
    }

    #[test]
    fn moderate_loss_delivers_most_reports() {
        let mut lane = LaneState::new(LaneModel::lossy(0.2, 7));
        let mut delivered_fresh = 0;
        for k in 0..1000 {
            let x = k as f64;
            if seen(&mut lane, x) == x {
                delivered_fresh += 1;
            }
        }
        assert!(
            (700..=900).contains(&delivered_fresh),
            "got {delivered_fresh}"
        );
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn invalid_probability_rejected() {
        let _ = LaneModel::lossy(1.0, 0);
    }
}
