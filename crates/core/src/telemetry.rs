//! Closed-loop observability: one metric registry per loop, updated every
//! sampling period, exported through pluggable sinks.
//!
//! The metric layer itself lives in the `eucon-telemetry` crate (fixed
//! registry, histograms, sinks) and is re-exported here; this module adds
//! the loop-specific wiring — which counters, gauges and histograms a
//! [`ClosedLoop`] maintains and how the per-period observations flow into
//! them.  The registry is declared once at [`ClosedLoop::build`] time and
//! updated strictly in place, so the loop's zero-allocations-per-period
//! guarantee holds with telemetry at the default level (registry only, no
//! file sinks).
//!
//! See DESIGN.md §12 for the architecture and the exported schema.
//!
//! [`ClosedLoop`]: crate::ClosedLoop
//! [`ClosedLoop::build`]: crate::ClosedLoopBuilder::build

pub use eucon_telemetry::{
    CsvSink, Histogram, HistogramSummary, JsonlSink, MetricValue, Registry, RingBufferSink,
    Snapshot, TelemetrySink,
};

use eucon_control::ControllerTelemetry;
use eucon_math::Vector;
use eucon_sim::EngineCounters;
use eucon_telemetry::{CounterId, GaugeId, HistogramId, RegistryBuilder};

/// Wall-clock nanoseconds spent in each phase of one sampling period.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct PeriodTimings {
    /// Fault injection + advancing the plant to the period boundary.
    pub simulate_ns: u64,
    /// Sampling the monitors, sensor corruption, feedback lanes.
    pub sample_ns: u64,
    /// The controller update (includes the QP solve).
    pub control_ns: u64,
    /// Quantization and the actuation lanes.
    pub actuate_ns: u64,
}

/// One sampling period's transport activity in a distributed loop —
/// per-period deltas plus the period's end-to-end lane round-trip
/// samples.  Absent (`None`) in a single-process loop; the net metrics
/// then stay at zero.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct NetPeriod<'a> {
    /// Frames accepted for sending this period (reports + commands).
    pub sent: u64,
    /// Frames delivered this period.
    pub received: u64,
    /// Frames lost this period (middleware losses, backpressure
    /// evictions, send timeouts, partition drops).
    pub lost: u64,
    /// Connections re-established this period.
    pub reconnects: u64,
    /// Malformed frames encountered this period.
    pub decode_errors: u64,
    /// Lanes whose report did not arrive, making the controller reuse
    /// the last delivered value.
    pub stale_reuse: u64,
    /// End-to-end lane round trips completed this period (report sent →
    /// matching rate command received), in nanoseconds.
    pub rtt_ns: &'a [u64],
}

/// One sampling period's runtime-membership activity — per-period deltas
/// plus the period's plant-model update latencies.  Absent (`None`) in a
/// loop without a churn plan; the churn metrics then stay at zero.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ChurnPeriod<'a> {
    /// Arrivals admitted this period.
    pub admitted: u64,
    /// Arrivals rejected this period.
    pub rejected: u64,
    /// Arrivals deferred this period.
    pub deferred: u64,
    /// Tasks departed this period.
    pub departed: u64,
    /// Mode changes applied this period.
    pub mode_changes: u64,
    /// Plant-model updates absorbed in place this period.
    pub incremental_updates: u64,
    /// Plant-model updates that fell back to a full rebuild this period.
    pub model_rebuilds: u64,
    /// Latency of each plant-model membership update this period, in
    /// nanoseconds.
    pub update_ns: &'a [u64],
}

/// Everything the loop observed in one sampling period, handed to
/// [`LoopTelemetry::record_period`] as one bundle.
pub(crate) struct PeriodObservation<'a> {
    /// Sampling-period index (0-based).
    pub period: u64,
    /// Simulation time at the end of the period.
    pub time: f64,
    /// True per-processor utilizations.
    pub utilization: &'a Vector,
    /// The set points the controller tracks.
    pub set_points: &'a Vector,
    /// The controller's self-reported internals.
    pub controller: ControllerTelemetry,
    /// The controller update returned an error this period.
    pub control_error: bool,
    /// Processors crashed this period.
    pub crashed: usize,
    /// Cumulative actuation-lane drops so far (the injector's total; the
    /// per-period delta is derived here).
    pub actuation_drops_total: usize,
    /// The engine's cumulative counters (deltas derived here).
    pub engine: EngineCounters,
    /// Phase timings for the span histograms.
    pub timings: PeriodTimings,
    /// Transport activity (distributed loops only).
    pub net: Option<NetPeriod<'a>>,
    /// Runtime-membership activity (loops with a churn plan only).
    pub churn: Option<ChurnPeriod<'a>>,
}

/// The closed loop's metric registry plus its sinks: declared at build,
/// fed once per period, flushed at the end of a run.
pub(crate) struct LoopTelemetry {
    registry: Registry,
    sinks: Vec<Box<dyn TelemetrySink>>,
    // Counters (cumulative over the run).
    c_periods: CounterId,
    c_control_errors: CounterId,
    c_degraded: CounterId,
    c_mode_transitions: CounterId,
    c_crashed: CounterId,
    c_act_drops: CounterId,
    c_warm_hits: CounterId,
    c_cold_retries: CounterId,
    c_relaxed: CounterId,
    c_sink_errors: CounterId,
    c_engine_events: CounterId,
    c_engine_resched: CounterId,
    c_engine_guard: CounterId,
    c_engine_stale: CounterId,
    // Transport counters (all zero in a single-process loop).
    c_frames_sent: CounterId,
    c_frames_received: CounterId,
    c_frames_lost: CounterId,
    c_lane_reconnects: CounterId,
    c_frame_decode_errors: CounterId,
    c_stale_reuse: CounterId,
    // Runtime-membership counters (all zero in a churn-free loop).
    c_tasks_admitted: CounterId,
    c_tasks_rejected: CounterId,
    c_tasks_deferred: CounterId,
    c_tasks_departed: CounterId,
    c_task_mode_changes: CounterId,
    c_incremental_updates: CounterId,
    c_model_rebuilds: CounterId,
    // Gauges (the period's point-in-time values).
    g_u: Vec<GaugeId>,
    g_err: Vec<GaugeId>,
    g_qp_iterations: GaugeId,
    g_active_set: GaugeId,
    g_active_churn: GaugeId,
    g_stale_max: GaugeId,
    g_queue_peak: GaugeId,
    // The supervisor's own cumulative counters arrive pre-accumulated in
    // [`ControllerTelemetry`], so they export as gauges, not counters.
    g_rejected: GaugeId,
    g_degradations: GaugeId,
    g_reengagements: GaugeId,
    // Histograms (distributions over the run).
    h_tracking: HistogramId,
    h_overshoot: HistogramId,
    h_qp_iters: HistogramId,
    h_simulate: HistogramId,
    h_sample: HistogramId,
    h_control: HistogramId,
    h_actuate: HistogramId,
    h_lane_rtt: HistogramId,
    h_model_update: HistogramId,
    // State for turning cumulative inputs into per-period increments.
    last_engine: EngineCounters,
    last_act_drops: usize,
    was_degraded: bool,
    // Batched sink export: when `batch_rows > 0`, export rows accumulate
    // in the preallocated buffers below and drain to the sinks once per
    // full batch — or at [`LoopTelemetry::flush`] for a partial one —
    // instead of once per period.
    batch_rows: usize,
    batch_periods: Vec<u64>,
    batch_times: Vec<f64>,
    batch_values: Vec<f64>,
    c_partial_flushes: CounterId,
}

/// Span-histogram bounds: 1 µs .. 100 ms in decades (nanoseconds).
const SPAN_BOUNDS: [f64; 6] = [1e3, 1e4, 1e5, 1e6, 1e7, 1e8];
/// Utilization-error bounds: the paper's ±0.02 acceptability band sits in
/// the second bucket.
const ERROR_BOUNDS: [f64; 6] = [0.01, 0.02, 0.05, 0.1, 0.2, 0.5];
/// QP active-set iteration bounds (a warm-started steady state solves in
/// 0 iterations).
const ITER_BOUNDS: [f64; 7] = [0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0];

/// `{prefix}{idx}` without the `format!` machinery — registries are
/// rebuilt per loop, and benchmark iterations rebuild the loop.
fn indexed_name(prefix: &str, idx: usize) -> String {
    let mut digits = [0u8; 20];
    let mut i = digits.len();
    let mut v = idx;
    loop {
        i -= 1;
        digits[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    let tail = std::str::from_utf8(&digits[i..]).expect("ascii digits");
    let mut s = String::with_capacity(prefix.len() + tail.len());
    s.push_str(prefix);
    s.push_str(tail);
    s
}

impl LoopTelemetry {
    /// Declares the full metric set for a loop over `num_procs`
    /// processors.  All storage is allocated here, once.
    pub(crate) fn new(num_procs: usize) -> Self {
        let mut b = RegistryBuilder::new();
        let c_periods = b.counter("periods");
        let c_control_errors = b.counter("control_errors");
        let c_degraded = b.counter("degraded_periods");
        let c_mode_transitions = b.counter("mode_transitions");
        let c_crashed = b.counter("crashed_periods");
        let c_act_drops = b.counter("actuation_drops");
        let c_warm_hits = b.counter("qp_warm_hits");
        let c_cold_retries = b.counter("qp_cold_retries");
        let c_relaxed = b.counter("qp_relaxed");
        let c_sink_errors = b.counter("sink_errors");
        let c_partial_flushes = b.counter("partial_flushes");
        let c_engine_events = b.counter("engine_events");
        let c_engine_resched = b.counter("engine_reschedules");
        let c_engine_guard = b.counter("engine_guard_deferrals");
        let c_engine_stale = b.counter("engine_stale_wakeups");
        let c_frames_sent = b.counter("frames_sent");
        let c_frames_received = b.counter("frames_received");
        let c_frames_lost = b.counter("frames_lost");
        let c_lane_reconnects = b.counter("lane_reconnects");
        let c_frame_decode_errors = b.counter("frame_decode_errors");
        let c_stale_reuse = b.counter("stale_report_reuse");
        let c_tasks_admitted = b.counter("tasks_admitted");
        let c_tasks_rejected = b.counter("tasks_rejected");
        let c_tasks_deferred = b.counter("tasks_deferred");
        let c_tasks_departed = b.counter("tasks_departed");
        let c_task_mode_changes = b.counter("task_mode_changes");
        let c_incremental_updates = b.counter("incremental_updates");
        let c_model_rebuilds = b.counter("model_rebuilds");
        let g_u = (0..num_procs)
            .map(|p| b.gauge(indexed_name("u_p", p + 1)))
            .collect();
        let g_err = (0..num_procs)
            .map(|p| b.gauge(indexed_name("err_p", p + 1)))
            .collect();
        let g_qp_iterations = b.gauge("qp_iterations");
        let g_active_set = b.gauge("qp_active_set");
        let g_active_churn = b.gauge("qp_active_churn");
        let g_stale_max = b.gauge("stale_max");
        let g_queue_peak = b.gauge("engine_queue_peak");
        let g_rejected = b.gauge("rejected_samples");
        let g_degradations = b.gauge("supervisor_degradations");
        let g_reengagements = b.gauge("supervisor_reengagements");
        let h_tracking = b.histogram("tracking_error", &ERROR_BOUNDS);
        let h_overshoot = b.histogram("overshoot", &ERROR_BOUNDS);
        let h_qp_iters = b.histogram("qp_iterations_hist", &ITER_BOUNDS);
        let h_simulate = b.histogram("span_simulate_ns", &SPAN_BOUNDS);
        let h_sample = b.histogram("span_sample_ns", &SPAN_BOUNDS);
        let h_control = b.histogram("span_control_ns", &SPAN_BOUNDS);
        let h_actuate = b.histogram("span_actuate_ns", &SPAN_BOUNDS);
        let h_lane_rtt = b.histogram("lane_rtt_ns", &SPAN_BOUNDS);
        let h_model_update = b.histogram("model_update_ns", &SPAN_BOUNDS);
        LoopTelemetry {
            registry: b.build(),
            sinks: Vec::new(),
            c_periods,
            c_control_errors,
            c_degraded,
            c_mode_transitions,
            c_crashed,
            c_act_drops,
            c_warm_hits,
            c_cold_retries,
            c_relaxed,
            c_sink_errors,
            c_engine_events,
            c_engine_resched,
            c_engine_guard,
            c_engine_stale,
            c_frames_sent,
            c_frames_received,
            c_frames_lost,
            c_lane_reconnects,
            c_frame_decode_errors,
            c_stale_reuse,
            c_tasks_admitted,
            c_tasks_rejected,
            c_tasks_deferred,
            c_tasks_departed,
            c_task_mode_changes,
            c_incremental_updates,
            c_model_rebuilds,
            g_u,
            g_err,
            g_qp_iterations,
            g_active_set,
            g_active_churn,
            g_stale_max,
            g_queue_peak,
            g_rejected,
            g_degradations,
            g_reengagements,
            h_tracking,
            h_overshoot,
            h_qp_iters,
            h_simulate,
            h_sample,
            h_control,
            h_actuate,
            h_lane_rtt,
            h_model_update,
            last_engine: EngineCounters::default(),
            last_act_drops: 0,
            was_degraded: false,
            batch_rows: 0,
            batch_periods: Vec::new(),
            batch_times: Vec::new(),
            batch_values: Vec::new(),
            c_partial_flushes,
        }
    }

    /// Switches sink export to batches of `rows` periods (`0` restores
    /// per-period export, the default).  Buffers are preallocated here so
    /// steady-state batched recording stays allocation-free.
    pub(crate) fn set_batch(&mut self, rows: usize) {
        self.batch_rows = rows;
        self.batch_periods = Vec::with_capacity(rows);
        self.batch_times = Vec::with_capacity(rows);
        self.batch_values = Vec::with_capacity(rows * self.registry.columns().len());
    }

    /// Attaches a sink and sends it the schema.  Sink failures never fail
    /// the loop — they are counted in `sink_errors`.
    pub(crate) fn add_sink(&mut self, mut sink: Box<dyn TelemetrySink>) {
        if sink.begin(self.registry.columns()).is_err() {
            self.registry.inc(self.c_sink_errors);
        }
        self.sinks.push(sink);
    }

    /// Folds one period's observation into the registry and pushes the
    /// export row to every sink.  Allocation-free (the sinks installed by
    /// default — none — and the registry both update in place).
    pub(crate) fn record_period(&mut self, obs: PeriodObservation<'_>) {
        let reg = &mut self.registry;
        reg.inc(self.c_periods);
        if obs.control_error {
            reg.inc(self.c_control_errors);
        }
        let ct = obs.controller;
        if ct.degraded {
            reg.inc(self.c_degraded);
        }
        if ct.degraded != self.was_degraded {
            reg.inc(self.c_mode_transitions);
            self.was_degraded = ct.degraded;
        }
        reg.add(self.c_crashed, obs.crashed as u64);
        reg.add(
            self.c_act_drops,
            obs.actuation_drops_total
                .saturating_sub(self.last_act_drops) as u64,
        );
        self.last_act_drops = obs.actuation_drops_total;
        if ct.warm_start {
            reg.inc(self.c_warm_hits);
        }
        if ct.cold_retry {
            reg.inc(self.c_cold_retries);
        }
        if ct.relaxed_utilization {
            reg.inc(self.c_relaxed);
        }
        let d = obs.engine.delta(&self.last_engine);
        self.last_engine = obs.engine;
        reg.add(self.c_engine_events, d.events);
        reg.add(self.c_engine_resched, d.reschedules);
        reg.add(self.c_engine_guard, d.guard_deferrals);
        reg.add(self.c_engine_stale, d.stale_wakeups);
        for p in 0..self.g_u.len() {
            let u = obs.utilization[p];
            let e = u - obs.set_points[p];
            reg.set(self.g_u[p], u);
            reg.set(self.g_err[p], e);
            reg.observe(self.h_tracking, e.abs());
            reg.observe(self.h_overshoot, e.max(0.0));
        }
        reg.set(self.g_qp_iterations, ct.qp_iterations as f64);
        reg.set(self.g_active_set, ct.active_set_size as f64);
        reg.set(self.g_active_churn, ct.active_churn as f64);
        reg.set(self.g_stale_max, ct.stale_max as f64);
        reg.set(self.g_queue_peak, obs.engine.queue_peak as f64);
        reg.set(self.g_rejected, ct.rejected_samples as f64);
        reg.set(self.g_degradations, ct.degradations as f64);
        reg.set(self.g_reengagements, ct.reengagements as f64);
        reg.observe(self.h_qp_iters, ct.qp_iterations as f64);
        reg.observe(self.h_simulate, obs.timings.simulate_ns as f64);
        reg.observe(self.h_sample, obs.timings.sample_ns as f64);
        reg.observe(self.h_control, obs.timings.control_ns as f64);
        reg.observe(self.h_actuate, obs.timings.actuate_ns as f64);
        if let Some(net) = obs.net {
            reg.add(self.c_frames_sent, net.sent);
            reg.add(self.c_frames_received, net.received);
            reg.add(self.c_frames_lost, net.lost);
            reg.add(self.c_lane_reconnects, net.reconnects);
            reg.add(self.c_frame_decode_errors, net.decode_errors);
            reg.add(self.c_stale_reuse, net.stale_reuse);
            for &rtt in net.rtt_ns {
                reg.observe(self.h_lane_rtt, rtt as f64);
            }
        }
        if let Some(ch) = obs.churn {
            reg.add(self.c_tasks_admitted, ch.admitted);
            reg.add(self.c_tasks_rejected, ch.rejected);
            reg.add(self.c_tasks_deferred, ch.deferred);
            reg.add(self.c_tasks_departed, ch.departed);
            reg.add(self.c_task_mode_changes, ch.mode_changes);
            reg.add(self.c_incremental_updates, ch.incremental_updates);
            reg.add(self.c_model_rebuilds, ch.model_rebuilds);
            for &ns in ch.update_ns {
                reg.observe(self.h_model_update, ns as f64);
            }
        }
        if !self.sinks.is_empty() {
            let row = self.registry.export_row();
            if self.batch_rows > 0 {
                self.batch_periods.push(obs.period);
                self.batch_times.push(obs.time);
                self.batch_values.extend_from_slice(row);
                if self.batch_periods.len() == self.batch_rows {
                    self.drain_batch();
                }
            } else {
                let mut errs = 0u64;
                for sink in &mut self.sinks {
                    if sink.record(obs.period, obs.time, row).is_err() {
                        errs += 1;
                    }
                }
                if errs > 0 {
                    self.registry.add(self.c_sink_errors, errs);
                }
            }
        }
    }

    /// Delivers the buffered batch to every sink and clears the buffers
    /// (capacity is retained, so refilling does not allocate).
    fn drain_batch(&mut self) {
        if self.batch_periods.is_empty() {
            return;
        }
        let width = self.registry.columns().len();
        let mut errs = 0u64;
        for sink in &mut self.sinks {
            if sink
                .record_batch(
                    &self.batch_periods,
                    &self.batch_times,
                    &self.batch_values,
                    width,
                )
                .is_err()
            {
                errs += 1;
            }
        }
        self.batch_periods.clear();
        self.batch_times.clear();
        self.batch_values.clear();
        if errs > 0 {
            self.registry.add(self.c_sink_errors, errs);
        }
    }

    /// Flushes every sink (safe to call more than once).
    pub(crate) fn flush(&mut self) {
        if !self.batch_periods.is_empty() {
            // A run that ends (or a loop evicted) mid-batch still delivers
            // its partial batch exactly once: draining clears the buffers,
            // so a repeated flush cannot re-deliver the rows.
            self.registry.inc(self.c_partial_flushes);
            self.drain_batch();
        }
        let mut errs = 0u64;
        for sink in &mut self.sinks {
            if sink.finish().is_err() {
                errs += 1;
            }
        }
        if errs > 0 {
            self.registry.add(self.c_sink_errors, errs);
        }
    }

    /// Read-only view of the live registry.
    pub(crate) fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Owned snapshot of the current metric state.
    pub(crate) fn snapshot(&self) -> Snapshot {
        self.registry.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs<'a>(u: &'a Vector, b: &'a Vector, period: u64) -> PeriodObservation<'a> {
        PeriodObservation {
            period,
            time: 1000.0 * (period + 1) as f64,
            utilization: u,
            set_points: b,
            controller: ControllerTelemetry::default(),
            control_error: false,
            crashed: 0,
            actuation_drops_total: 0,
            engine: EngineCounters::default(),
            timings: PeriodTimings::default(),
            net: None,
            churn: None,
        }
    }

    #[test]
    fn cumulative_inputs_become_per_period_increments() {
        let u = Vector::from_slice(&[0.8, 0.9]);
        let b = Vector::from_slice(&[0.828, 0.828]);
        let mut lt = LoopTelemetry::new(2);
        let mut o = obs(&u, &b, 0);
        o.actuation_drops_total = 3;
        o.engine.events = 100;
        lt.record_period(o);
        let mut o = obs(&u, &b, 1);
        o.actuation_drops_total = 5;
        o.engine.events = 150;
        lt.record_period(o);
        let snap = lt.snapshot();
        assert_eq!(snap.counter("periods"), Some(2));
        // Cumulative totals survive as cumulative counters, not as
        // double-counted sums of the raw inputs (3 + 5 or 100 + 150).
        assert_eq!(snap.counter("actuation_drops"), Some(5));
        assert_eq!(snap.counter("engine_events"), Some(150));
        assert_eq!(snap.gauge("u_p2"), Some(0.9));
        let t = snap.histogram("tracking_error").unwrap();
        assert_eq!(t.count, 4, "one observation per processor per period");
    }

    #[test]
    fn mode_transitions_count_edges_not_periods() {
        let u = Vector::from_slice(&[0.8]);
        let b = Vector::from_slice(&[0.828]);
        let mut lt = LoopTelemetry::new(1);
        for (k, degraded) in [false, true, true, true, false, false].iter().enumerate() {
            let mut o = obs(&u, &b, k as u64);
            o.controller.degraded = *degraded;
            lt.record_period(o);
        }
        let snap = lt.snapshot();
        assert_eq!(snap.counter("degraded_periods"), Some(3));
        assert_eq!(
            snap.counter("mode_transitions"),
            Some(2),
            "one trip + one recovery"
        );
    }

    #[test]
    fn sinks_receive_every_period_and_schema() {
        let u = Vector::from_slice(&[0.5]);
        let b = Vector::from_slice(&[0.828]);
        let mut lt = LoopTelemetry::new(1);
        lt.add_sink(Box::new(RingBufferSink::new(8)));
        for k in 0..3 {
            lt.record_period(obs(&u, &b, k));
        }
        lt.flush();
        // Registry state and the pushed rows must agree.
        assert_eq!(
            lt.registry().columns().len(),
            lt.snapshot().entries().len() + 2 * 9
        );
        assert_eq!(lt.snapshot().counter("sink_errors"), Some(0));
    }

    #[test]
    fn net_metrics_flow_into_counters_and_rtt_histogram() {
        let u = Vector::from_slice(&[0.5]);
        let b = Vector::from_slice(&[0.828]);
        let mut lt = LoopTelemetry::new(1);
        let rtts = [1_000u64, 2_000_000];
        let mut o = obs(&u, &b, 0);
        o.net = Some(NetPeriod {
            sent: 4,
            received: 3,
            lost: 1,
            reconnects: 1,
            decode_errors: 0,
            stale_reuse: 2,
            rtt_ns: &rtts,
        });
        lt.record_period(o);
        let snap = lt.snapshot();
        assert_eq!(snap.counter("frames_sent"), Some(4));
        assert_eq!(snap.counter("frames_received"), Some(3));
        assert_eq!(snap.counter("frames_lost"), Some(1));
        assert_eq!(snap.counter("lane_reconnects"), Some(1));
        assert_eq!(snap.counter("stale_report_reuse"), Some(2));
        assert_eq!(snap.histogram("lane_rtt_ns").unwrap().count, 2);
    }

    #[test]
    fn churn_metrics_flow_into_counters_and_update_histogram() {
        let u = Vector::from_slice(&[0.5]);
        let b = Vector::from_slice(&[0.828]);
        let mut lt = LoopTelemetry::new(1);
        let updates = [5_000u64, 40_000];
        let mut o = obs(&u, &b, 0);
        o.churn = Some(ChurnPeriod {
            admitted: 2,
            rejected: 1,
            deferred: 1,
            departed: 1,
            mode_changes: 3,
            incremental_updates: 2,
            model_rebuilds: 1,
            update_ns: &updates,
        });
        lt.record_period(o);
        // A churn-free period leaves the counters untouched.
        lt.record_period(obs(&u, &b, 1));
        let snap = lt.snapshot();
        assert_eq!(snap.counter("tasks_admitted"), Some(2));
        assert_eq!(snap.counter("tasks_rejected"), Some(1));
        assert_eq!(snap.counter("tasks_deferred"), Some(1));
        assert_eq!(snap.counter("tasks_departed"), Some(1));
        assert_eq!(snap.counter("task_mode_changes"), Some(3));
        assert_eq!(snap.counter("incremental_updates"), Some(2));
        assert_eq!(snap.counter("model_rebuilds"), Some(1));
        assert_eq!(snap.histogram("model_update_ns").unwrap().count, 2);
    }

    #[test]
    fn batched_export_drains_on_full_batches_and_flush() {
        use std::cell::RefCell;
        use std::rc::Rc;
        /// Records the period of every row it receives, shared with the
        /// test through an `Rc` so delivery can be asserted after the
        /// telemetry takes ownership of the box.
        struct CountingSink {
            rows: Rc<RefCell<Vec<u64>>>,
        }
        impl TelemetrySink for CountingSink {
            fn begin(&mut self, _c: &[String]) -> std::io::Result<()> {
                Ok(())
            }
            fn record(&mut self, p: u64, _t: f64, _v: &[f64]) -> std::io::Result<()> {
                self.rows.borrow_mut().push(p);
                Ok(())
            }
        }
        let rows = Rc::new(RefCell::new(Vec::new()));
        let u = Vector::from_slice(&[0.5]);
        let b = Vector::from_slice(&[0.828]);
        let mut lt = LoopTelemetry::new(1);
        lt.add_sink(Box::new(CountingSink { rows: rows.clone() }));
        lt.set_batch(4);
        for k in 0..6 {
            lt.record_period(obs(&u, &b, k));
            if k < 3 {
                assert!(rows.borrow().is_empty(), "no rows before the batch fills");
            }
        }
        // Periods 0..=3 drained as the one full batch; 4 and 5 are pending.
        assert_eq!(*rows.borrow(), vec![0, 1, 2, 3]);
        lt.flush();
        assert_eq!(*rows.borrow(), vec![0, 1, 2, 3, 4, 5]);
        // A second flush must not re-deliver the partial batch.
        lt.flush();
        assert_eq!(*rows.borrow(), vec![0, 1, 2, 3, 4, 5]);
        let snap = lt.snapshot();
        assert_eq!(snap.counter("partial_flushes"), Some(1));
        assert_eq!(snap.counter("sink_errors"), Some(0));
    }

    #[test]
    fn full_batch_runs_report_no_partial_flush() {
        let u = Vector::from_slice(&[0.5]);
        let b = Vector::from_slice(&[0.828]);
        let mut lt = LoopTelemetry::new(1);
        lt.add_sink(Box::new(RingBufferSink::new(16)));
        lt.set_batch(3);
        for k in 0..6 {
            lt.record_period(obs(&u, &b, k));
        }
        lt.flush();
        let snap = lt.snapshot();
        assert_eq!(snap.counter("partial_flushes"), Some(0));
        assert_eq!(snap.counter("sink_errors"), Some(0));
    }

    #[test]
    fn failing_sinks_are_counted_not_fatal() {
        struct Broken;
        impl TelemetrySink for Broken {
            fn begin(&mut self, _c: &[String]) -> std::io::Result<()> {
                Err(std::io::Error::other("begin"))
            }
            fn record(&mut self, _p: u64, _t: f64, _v: &[f64]) -> std::io::Result<()> {
                Err(std::io::Error::other("record"))
            }
            fn finish(&mut self) -> std::io::Result<()> {
                Err(std::io::Error::other("finish"))
            }
        }
        let u = Vector::from_slice(&[0.5]);
        let b = Vector::from_slice(&[0.828]);
        let mut lt = LoopTelemetry::new(1);
        lt.add_sink(Box::new(Broken));
        lt.record_period(obs(&u, &b, 0));
        lt.flush();
        assert_eq!(lt.snapshot().counter("sink_errors"), Some(3));
        assert_eq!(lt.snapshot().counter("periods"), Some(1));
    }
}
