//! The plant abstraction: what the closed loop senses and actuates.
//!
//! The EUCON loop only needs sampled utilizations in and rate commands
//! out (paper §4).  Everything else the loop does — fault injection,
//! runtime membership — is optional capability.  [`Plant`] captures that
//! surface so [`crate::ClosedLoop`] (and everything stacked on it:
//! [`crate::DistributedLoop`], [`crate::FleetRunner`],
//! [`crate::service::ControlService`]) can drive any backend:
//!
//! * [`SimPlant`] — the event-driven simulator (`eucon-sim`), the
//!   default.  Bit-identical to the pre-abstraction loop: the golden
//!   trace hashes and the 0-alloc steady-state gates are pinned against
//!   it.
//! * [`crate::ReplayPlant`] — a recorded telemetry trace played back
//!   through the loop (regression and bench input).
//! * `OsPlant` (feature `os-plant`) — real CPU-bound worker processes
//!   on the host scheduler, actuated through cgroup CPU quotas and
//!   sampled from `/proc`.
//!
//! Backends are chosen per loop with the `plant(...)` builder option
//! ([`crate::LoopBuilder::plant`] and its mode-specific counterparts),
//! which takes a [`PlantFactory`] — a `Send + Sync` description that
//! builds the actual (possibly non-`Send`) plant inside whichever
//! worker runs the loop.  See DESIGN.md §18.

use std::sync::Arc;

use eucon_math::Vector;
use eucon_sim::{DeadlineStats, EngineCounters, SimConfig, Simulator};
use eucon_tasks::{ProcessorId, Task, TaskError, TaskId, TaskSet};

use crate::CoreError;

/// The sensing/actuation surface the closed loop drives once per
/// sampling period.
///
/// # Contract
///
/// Each period the loop calls, in order: the fault hooks (only when an
/// injector is configured), [`Plant::advance_to`] with the period's end
/// time, [`Plant::sample_into`] to read the monitors, and finally
/// [`Plant::apply_rates`] with the new command.  A backend must tolerate
/// that exact cadence and nothing else is guaranteed.
///
/// Implementations must not allocate in [`Plant::advance_to`],
/// [`Plant::sample_into`], [`Plant::apply_rates`] or
/// [`Plant::rates_in_force`] once warmed up — the loop's steady-state
/// 0-alloc gates run through this trait.
pub trait Plant {
    /// Short backend label for reports (e.g. `"sim"`, `"replay"`).
    fn name(&self) -> &'static str;

    /// Number of processors (utilization monitors) the plant exposes.
    fn num_processors(&self) -> usize;

    /// Number of tasks (rate modulators) the plant exposes.
    fn num_tasks(&self) -> usize;

    /// Advances the plant to absolute time `t_end` (the end of the
    /// current sampling period).
    fn advance_to(&mut self, t_end: f64);

    /// Samples the per-processor utilizations over the period that just
    /// ended into the caller-provided buffer (no allocation).
    fn sample_into(&mut self, out: &mut Vector);

    /// Applies one rate command per task (the rate modulators).  Rates
    /// are clamped into each task's acceptable range.
    fn apply_rates(&mut self, rates: &Vector);

    /// The rates currently in force at the modulators (post-clamping),
    /// one per task.
    fn rates_in_force(&self) -> &[f64];

    /// End-to-end deadline statistics accumulated so far (all zero for
    /// backends that do not track deadlines).
    fn deadline_stats(&self) -> DeadlineStats {
        DeadlineStats::default()
    }

    /// Event-engine counters accumulated so far (all zero for backends
    /// without an event engine).
    fn counters(&self) -> EngineCounters {
        EngineCounters::default()
    }

    // --- fault surface (driven by the loop's fault injector; no-ops for
    // backends that cannot emulate the fault) ---

    /// Scales the execution speed of processor `p` (execution-time
    /// bursts).
    fn set_speed_override(&mut self, p: ProcessorId, factor: f64) {
        let _ = (p, factor);
    }

    /// Crashes processor `p`: it executes nothing until recovered.
    fn crash_processor(&mut self, p: ProcessorId) {
        let _ = p;
    }

    /// Recovers processor `p` from a crash.
    fn recover_processor(&mut self, p: ProcessorId) {
        let _ = p;
    }

    // --- membership surface (driven by churn plans; backends that
    // return `false` from `supports_membership` are rejected at build
    // time when a churn plan or admission policy is configured) ---

    /// Whether this backend supports runtime membership (admissions,
    /// departures, mode changes).
    fn supports_membership(&self) -> bool {
        false
    }

    /// Admits a new task into the plant, returning its id.
    ///
    /// # Errors
    ///
    /// Propagates workload-validation failures.
    ///
    /// # Panics
    ///
    /// The default implementation panics: backends that report
    /// [`Plant::supports_membership`] `false` never receive membership
    /// calls (the builder rejects churn plans for them), so reaching it
    /// is a loop bug.
    fn admit_task(&mut self, task: Task) -> Result<TaskId, TaskError> {
        let _ = task;
        unreachable!("membership call on a plant without membership support")
    }

    /// Departs a task: in-flight work drains, no further releases.
    fn depart_task(&mut self, task: TaskId) {
        let _ = task;
    }

    /// Whether a task has departed.
    fn is_departed(&self, task: TaskId) -> bool {
        let _ = task;
        false
    }

    /// Scales a task's execution demand (mode change).
    fn set_task_mode(&mut self, task: TaskId, exec_scale: f64) {
        let _ = (task, exec_scale);
    }

    /// Borrow the underlying simulator, when this plant is
    /// simulator-backed (`None` for every other backend).
    fn as_simulator(&self) -> Option<&Simulator> {
        None
    }
}

/// A `Send + Sync` description that builds a [`Plant`] for a workload.
///
/// Factories, not plants, travel through the builders: a
/// [`crate::FleetLoopSpec`] must stay `Send + Clone` while the plant it
/// describes (a simulator with its RNG streams, a process tree) need
/// not be.  The factory is invoked once per loop, inside whichever
/// thread runs it.
pub trait PlantFactory: Send + Sync {
    /// Builds the plant for `set` (the workload the controller was
    /// built against) under the loop's simulator configuration (which
    /// only the simulator backend interprets).
    ///
    /// # Errors
    ///
    /// Backend-specific construction failures: [`CoreError::Replay`]
    /// for recordings that do not decode or do not match the workload,
    /// [`CoreError::Config`] for everything else.
    fn build_plant(&self, set: &TaskSet, sim: &SimConfig) -> Result<Box<dyn Plant>, CoreError>;

    /// Short factory label for builder `Debug` output.
    fn label(&self) -> &'static str {
        "plant"
    }
}

/// Factories are shared by reference across fleet workers.
impl PlantFactory for Arc<dyn PlantFactory> {
    fn build_plant(&self, set: &TaskSet, sim: &SimConfig) -> Result<Box<dyn Plant>, CoreError> {
        (**self).build_plant(set, sim)
    }

    fn label(&self) -> &'static str {
        (**self).label()
    }
}

/// The default backend: the event-driven `eucon-sim` simulator behind
/// the [`Plant`] surface.
///
/// A loop built without a `plant(...)` option gets exactly this, and the
/// indirection is behaviour-free: the golden trace hashes and the
/// steady-state allocation gates are pinned bit-identical to the
/// pre-abstraction loop.
#[derive(Debug)]
pub struct SimPlant {
    sim: Simulator,
}

impl SimPlant {
    /// Wraps an existing simulator.
    pub fn new(sim: Simulator) -> Self {
        SimPlant { sim }
    }

    /// Builds the simulator for `set` under `cfg` and wraps it.
    pub fn build(set: TaskSet, cfg: SimConfig) -> Self {
        SimPlant::new(Simulator::new(set, cfg))
    }

    /// Borrow the wrapped simulator.
    pub fn simulator(&self) -> &Simulator {
        &self.sim
    }
}

impl Plant for SimPlant {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn num_processors(&self) -> usize {
        self.sim.task_set().num_processors()
    }

    fn num_tasks(&self) -> usize {
        self.sim.rates_slice().len()
    }

    fn advance_to(&mut self, t_end: f64) {
        self.sim.run_until(t_end);
    }

    fn sample_into(&mut self, out: &mut Vector) {
        self.sim.sample_utilizations_into(out);
    }

    fn apply_rates(&mut self, rates: &Vector) {
        self.sim.set_rates(rates);
    }

    fn rates_in_force(&self) -> &[f64] {
        self.sim.rates_slice()
    }

    fn deadline_stats(&self) -> DeadlineStats {
        self.sim.deadline_stats()
    }

    fn counters(&self) -> EngineCounters {
        self.sim.counters()
    }

    fn set_speed_override(&mut self, p: ProcessorId, factor: f64) {
        self.sim.set_speed_override(p, factor);
    }

    fn crash_processor(&mut self, p: ProcessorId) {
        self.sim.crash_processor(p);
    }

    fn recover_processor(&mut self, p: ProcessorId) {
        self.sim.recover_processor(p);
    }

    fn supports_membership(&self) -> bool {
        true
    }

    fn admit_task(&mut self, task: Task) -> Result<TaskId, TaskError> {
        self.sim.admit_task(task)
    }

    fn depart_task(&mut self, task: TaskId) {
        self.sim.depart_task(task);
    }

    fn is_departed(&self, task: TaskId) -> bool {
        self.sim.is_departed(task)
    }

    fn set_task_mode(&mut self, task: TaskId, exec_scale: f64) {
        self.sim.set_task_mode(task, exec_scale);
    }

    fn as_simulator(&self) -> Option<&Simulator> {
        Some(&self.sim)
    }
}

/// Builds a [`SimPlant`] from the loop's own task set and simulator
/// configuration — the explicit spelling of the default backend, for
/// call sites that select backends dynamically.
///
/// ```
/// use eucon_core::{LoopBuilder, SimPlantFactory};
/// use eucon_sim::SimConfig;
/// use eucon_tasks::workloads;
///
/// # fn main() -> Result<(), eucon_core::CoreError> {
/// let mut cl = LoopBuilder::new(workloads::simple())
///     .sim_config(SimConfig::constant_etf(0.5))
///     .plant(SimPlantFactory)
///     .local()?;
/// cl.run(5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimPlantFactory;

impl PlantFactory for SimPlantFactory {
    fn build_plant(&self, set: &TaskSet, sim: &SimConfig) -> Result<Box<dyn Plant>, CoreError> {
        Ok(Box::new(SimPlant::build(set.clone(), sim.clone())))
    }

    fn label(&self) -> &'static str {
        "sim"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eucon_tasks::workloads;

    #[test]
    fn sim_plant_forwards_the_simulator_surface() {
        let set = workloads::simple();
        let n_tasks = set.num_tasks();
        let mut plant = SimPlant::build(set, SimConfig::constant_etf(0.5));
        assert_eq!(plant.name(), "sim");
        assert_eq!(plant.num_processors(), 2);
        assert_eq!(plant.num_tasks(), n_tasks);
        assert!(plant.supports_membership());
        assert!(plant.as_simulator().is_some());
        plant.advance_to(1000.0);
        let mut u = Vector::zeros(2);
        plant.sample_into(&mut u);
        assert!(u.iter().all(|x| x.is_finite() && *x >= 0.0));
        let cmd = Vector::from_slice(plant.rates_in_force());
        plant.apply_rates(&cmd);
        assert_eq!(plant.rates_in_force(), cmd.as_slice());
        assert!(plant.counters().events > 0);
    }

    #[test]
    fn factory_builds_an_equivalent_plant() {
        let set = workloads::simple();
        let cfg = SimConfig::constant_etf(0.5);
        let direct = SimPlant::build(set.clone(), cfg.clone());
        let via_factory = SimPlantFactory.build_plant(&set, &cfg).unwrap();
        assert_eq!(direct.rates_in_force(), via_factory.rates_in_force());
        assert_eq!(via_factory.name(), "sim");
        assert_eq!(SimPlantFactory.label(), "sim");
    }

    #[test]
    fn default_hooks_are_inert() {
        /// A minimal utilization source: fixed report, no extras.
        struct Flat(Vec<f64>, Vec<f64>);
        impl Plant for Flat {
            fn name(&self) -> &'static str {
                "flat"
            }
            fn num_processors(&self) -> usize {
                self.0.len()
            }
            fn num_tasks(&self) -> usize {
                self.1.len()
            }
            fn advance_to(&mut self, _t_end: f64) {}
            fn sample_into(&mut self, out: &mut Vector) {
                out.copy_from_slice(&self.0);
            }
            fn apply_rates(&mut self, rates: &Vector) {
                self.1.copy_from_slice(rates.as_slice());
            }
            fn rates_in_force(&self) -> &[f64] {
                &self.1
            }
        }
        let mut p = Flat(vec![0.5, 0.5], vec![1.0; 4]);
        // Fault hooks are accepted and ignored.
        p.set_speed_override(ProcessorId(0), 2.0);
        p.crash_processor(ProcessorId(1));
        p.recover_processor(ProcessorId(1));
        assert!(!p.supports_membership());
        assert!(!p.is_departed(TaskId(0)));
        p.depart_task(TaskId(0));
        p.set_task_mode(TaskId(0), 2.0);
        assert!(p.as_simulator().is_none());
        assert_eq!(p.deadline_stats(), DeadlineStats::default());
        assert_eq!(p.counters(), EngineCounters::default());
    }
}
