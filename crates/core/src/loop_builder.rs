//! The v0.3 unified builder: one entry point for every execution mode.
//!
//! Before v0.3, local loops, distributed loops and fleet runs each had
//! their own builder with overlapping-but-diverging surfaces
//! ([`ClosedLoopBuilder`], `DistributedLoopBuilder`, [`FleetConfig`] +
//! [`FleetLoopSpec`]).  [`LoopBuilder`] collapses them: describe the
//! experiment once, then pick the execution mode with a finisher —
//!
//! * [`LoopBuilder::local`] — the single-process loop ([`ClosedLoop`]);
//! * [`LoopBuilder::distributed`] — real transport lanes
//!   ([`DistributedLoop`]), with the [`NetConfig`] passed explicitly so
//!   the mode switch is visible at the call site;
//! * [`LoopBuilder::fleet`] — `n` replicas on the work-stealing fleet
//!   runner ([`FleetPlan`] → [`FleetReport`]).
//!
//! Options a mode cannot honour fail fast with [`CoreError::Config`]
//! (at the finisher or at [`FleetPlan::run`]) instead of being silently
//! dropped.  The old builders remain available — and bit-identical:
//! every finisher lowers onto them, so the golden trace hashes are
//! unchanged through this facade (pinned in `tests/facade_v03.rs`).

use std::sync::Arc;

use eucon_math::Vector;
use eucon_sim::{FaultPlan, SimConfig};
use eucon_tasks::TaskSet;

use crate::plant::PlantFactory;
use crate::{
    AdmissionPolicy, ChurnPlan, ClosedLoop, ClosedLoopBuilder, ControllerSpec, CoreError,
    DistributedLoop, FleetConfig, FleetLoopSpec, FleetReport, FleetRunner, LaneModel, NetConfig,
};

/// One builder for every execution mode; see the module docs.
///
/// # Example
///
/// ```
/// use eucon_core::{ControllerSpec, LoopBuilder, NetConfig};
/// use eucon_sim::SimConfig;
/// use eucon_tasks::workloads;
///
/// # fn main() -> Result<(), eucon_core::CoreError> {
/// // The same experiment, two execution modes:
/// let mut local = LoopBuilder::new(workloads::simple())
///     .sim_config(SimConfig::constant_etf(0.5))
///     .local()?;
/// let mut dist = LoopBuilder::new(workloads::simple())
///     .sim_config(SimConfig::constant_etf(0.5))
///     .distributed(NetConfig::channel())?;
/// // Ideal lanes are bit-identical to the single-process loop.
/// assert_eq!(
///     local.run(40).trace.steps().last().unwrap().utilization,
///     dist.run(40).trace.steps().last().unwrap().utilization,
/// );
/// # Ok(())
/// # }
/// ```
pub struct LoopBuilder {
    set: TaskSet,
    sim: SimConfig,
    controller: ControllerSpec,
    set_points: Option<Vector>,
    lanes: Option<LaneModel>,
    faults: FaultPlan,
    churn: Option<ChurnPlan>,
    admission: Option<AdmissionPolicy>,
    quantized_rates: Option<usize>,
    record_trace: Option<bool>,
    sampling_period: Option<f64>,
    telemetry_batch: Option<usize>,
    plant: Option<Arc<dyn PlantFactory>>,
}

impl std::fmt::Debug for LoopBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LoopBuilder")
            .field("controller", &self.controller)
            .field("plant", &self.plant.as_ref().map_or("sim", |p| p.label()))
            .field("faults", &self.faults)
            .finish_non_exhaustive()
    }
}

impl LoopBuilder {
    /// Starts describing an experiment over a task set (defaults: the
    /// `etf = 1` constant-execution-time plant, the EUCON controller
    /// with SIMPLE's parameters).
    pub fn new(set: TaskSet) -> Self {
        LoopBuilder {
            set,
            sim: SimConfig::default(),
            controller: ControllerSpec::Eucon(eucon_control::MpcConfig::simple()),
            set_points: None,
            lanes: None,
            faults: FaultPlan::none(),
            churn: None,
            admission: None,
            quantized_rates: None,
            record_trace: None,
            sampling_period: None,
            telemetry_batch: None,
            plant: None,
        }
    }

    /// Chooses the plant backend every mode senses and actuates
    /// (default: the `eucon-sim` simulator).
    ///
    /// Accepts any [`PlantFactory`] — [`crate::SimPlantFactory`] (the
    /// explicit default), a loaded [`crate::ReplayTrace`], or an
    /// `OsPlantConfig` (feature `os-plant`) driving real worker
    /// processes — and composes with every finisher:
    /// [`LoopBuilder::local`], [`LoopBuilder::distributed`] and
    /// [`LoopBuilder::fleet`].
    pub fn plant(mut self, factory: impl PlantFactory + 'static) -> Self {
        self.plant = Some(Arc::new(factory));
        self
    }

    /// Chooses the simulator configuration.
    pub fn sim_config(mut self, cfg: SimConfig) -> Self {
        self.sim = cfg;
        self
    }

    /// Chooses the controller.
    pub fn controller(mut self, spec: ControllerSpec) -> Self {
        self.controller = spec;
        self
    }

    /// Overrides the utilization set points.
    pub fn set_points(mut self, b: Vector) -> Self {
        self.set_points = Some(b);
        self
    }

    /// Applies the in-loop feedback-lane model (delay/loss).  Local
    /// mode only — in distributed mode the lanes are real, so delay and
    /// loss belong on the [`NetConfig`]
    /// (`report_lanes`/`command_lanes`), and the finisher rejects this
    /// option to keep the two from silently diverging.
    pub fn lanes(mut self, model: LaneModel) -> Self {
        self.lanes = Some(model);
        self
    }

    /// Injects faults from a scripted plan.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Scripts runtime membership changes (arrivals, departures, mode
    /// changes).
    pub fn churn(mut self, plan: ChurnPlan) -> Self {
        self.churn = Some(plan);
        self
    }

    /// Gates churn arrivals behind the §6.2 admission test.
    pub fn admission(mut self, policy: AdmissionPolicy) -> Self {
        self.admission = Some(policy);
        self
    }

    /// Quantizes rate commands to `levels` discrete levels.
    pub fn quantized_rates(mut self, levels: usize) -> Self {
        self.quantized_rates = Some(levels);
        self
    }

    /// Turns per-period trace recording on or off.
    pub fn record_trace(mut self, on: bool) -> Self {
        self.record_trace = Some(on);
        self
    }

    /// Overrides the sampling period (seconds).
    pub fn sampling_period(mut self, ts: f64) -> Self {
        self.sampling_period = Some(ts);
        self
    }

    /// Sets the telemetry flush batch size (rows).
    pub fn telemetry_batch(mut self, rows: usize) -> Self {
        self.telemetry_batch = Some(rows);
        self
    }

    /// Lowers the shared options onto a [`ClosedLoopBuilder`].
    fn lower(self) -> ClosedLoopBuilder {
        let mut b = ClosedLoop::builder(self.set)
            .sim_config(self.sim)
            .controller(self.controller)
            .faults(self.faults);
        if let Some(points) = self.set_points {
            b = b.set_points(points);
        }
        if let Some(model) = self.lanes {
            b = b.lanes(model);
        }
        if let Some(plan) = self.churn {
            b = b.churn(plan);
        }
        if let Some(policy) = self.admission {
            b = b.admission(policy);
        }
        if let Some(levels) = self.quantized_rates {
            b = b.quantized_rates(levels);
        }
        if let Some(on) = self.record_trace {
            b = b.record_trace(on);
        }
        if let Some(ts) = self.sampling_period {
            b = b.sampling_period(ts);
        }
        if let Some(rows) = self.telemetry_batch {
            b = b.telemetry_batch(rows);
        }
        if let Some(factory) = self.plant {
            b = b.plant(factory);
        }
        b
    }

    /// Finishes as a single-process loop.
    ///
    /// # Errors
    ///
    /// Everything [`ClosedLoopBuilder::build`] rejects.
    pub fn local(self) -> Result<ClosedLoop, CoreError> {
        self.lower().build()
    }

    /// Finishes as a distributed loop over the given transport
    /// configuration.
    ///
    /// # Errors
    ///
    /// Everything the distributed builder rejects, plus
    /// [`CoreError::Config`] when [`LoopBuilder::lanes`] was set (use
    /// `net.report_lanes` / `net.command_lanes` instead).
    pub fn distributed(mut self, net: NetConfig) -> Result<DistributedLoop, CoreError> {
        if self.lanes.take().is_some() {
            return Err(CoreError::Config(
                "in distributed mode the lanes are real: configure delay/loss on the \
                 NetConfig (report_lanes / command_lanes), not with LoopBuilder::lanes"
                    .into(),
            ));
        }
        let mut inner = self.lower().build()?;
        inner.attach_net(&net)?;
        Ok(DistributedLoop::from_inner(inner))
    }

    /// Finishes as a fleet of `n` replicas of this loop; tune and start
    /// it with the returned [`FleetPlan`].
    pub fn fleet(self, n: usize) -> FleetPlan {
        let mut unsupported = Vec::new();
        if self.lanes.is_some() {
            unsupported.push("lanes");
        }
        if self.quantized_rates.is_some() {
            unsupported.push("quantized_rates");
        }
        if self.record_trace.is_some() {
            unsupported.push("record_trace");
        }
        if self.sampling_period.is_some() {
            unsupported.push("sampling_period");
        }
        let mut spec = FleetLoopSpec::new(self.set)
            .sim_config(self.sim)
            .controller(self.controller)
            .faults(self.faults);
        if let Some(points) = self.set_points {
            spec = spec.set_points(points);
        }
        if let Some(plan) = self.churn {
            spec = spec.churn(plan);
        }
        if let Some(policy) = self.admission {
            spec = spec.admission(policy);
        }
        if let Some(factory) = self.plant {
            spec = spec.plant(factory);
        }
        FleetPlan {
            spec,
            n,
            threads: None,
            telemetry_batch: self.telemetry_batch,
            share_models: None,
            unsupported,
        }
    }
}

/// A fleet run described by [`LoopBuilder::fleet`], waiting for runtime
/// tuning and a period count.
#[derive(Debug)]
pub struct FleetPlan {
    spec: FleetLoopSpec,
    n: usize,
    threads: Option<usize>,
    telemetry_batch: Option<usize>,
    share_models: Option<bool>,
    /// Options the fleet runner cannot honour; reported at run().
    unsupported: Vec<&'static str>,
}

impl FleetPlan {
    /// Caps the worker thread count (default: available parallelism).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Sets the per-loop telemetry batch size.
    pub fn telemetry_batch(mut self, rows: usize) -> Self {
        self.telemetry_batch = Some(rows);
        self
    }

    /// Shares plant models across identical replicas.
    pub fn share_models(mut self, on: bool) -> Self {
        self.share_models = Some(on);
        self
    }

    /// Runs the fleet for `periods` sampling periods.
    ///
    /// # Errors
    ///
    /// [`CoreError::Config`] when the builder carried options the fleet
    /// runner cannot honour, plus everything [`FleetRunner::run`]
    /// rejects.
    pub fn run(self, periods: usize) -> Result<FleetReport, CoreError> {
        if !self.unsupported.is_empty() {
            return Err(CoreError::Config(format!(
                "fleet mode does not support: {}",
                self.unsupported.join(", ")
            )));
        }
        let mut cfg = FleetConfig::new(periods);
        if let Some(threads) = self.threads {
            cfg = cfg.threads(threads);
        }
        if let Some(rows) = self.telemetry_batch {
            cfg = cfg.telemetry_batch(rows);
        }
        if let Some(on) = self.share_models {
            cfg = cfg.share_models(on);
        }
        FleetRunner::replicated(self.spec, self.n, cfg).run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RunResult;
    use eucon_control::MpcConfig;
    use eucon_tasks::workloads;

    /// FNV-1a over the bit patterns of every step's utilization vector.
    fn digest(result: &RunResult) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for step in result.trace.steps() {
            for &x in step.utilization.iter() {
                for b in x.to_bits().to_le_bytes() {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x0000_0100_0000_01b3);
                }
            }
        }
        h
    }

    #[test]
    fn local_finisher_matches_the_classic_builder_bitwise() {
        let mut classic = ClosedLoop::builder(workloads::simple())
            .sim_config(SimConfig::constant_etf(0.5))
            .controller(ControllerSpec::Eucon(MpcConfig::simple()))
            .build()
            .unwrap();
        let mut unified = LoopBuilder::new(workloads::simple())
            .sim_config(SimConfig::constant_etf(0.5))
            .local()
            .unwrap();
        assert_eq!(digest(&classic.run(40)), digest(&unified.run(40)));
    }

    #[test]
    fn distributed_finisher_matches_local_over_ideal_channels() {
        let mut local = LoopBuilder::new(workloads::medium())
            .sim_config(SimConfig::constant_etf(0.5))
            .controller(ControllerSpec::Eucon(MpcConfig::medium()))
            .local()
            .unwrap();
        let mut dist = LoopBuilder::new(workloads::medium())
            .sim_config(SimConfig::constant_etf(0.5))
            .controller(ControllerSpec::Eucon(MpcConfig::medium()))
            .distributed(NetConfig::channel())
            .unwrap();
        assert_eq!(digest(&local.run(30)), digest(&dist.run(30)));
    }

    #[test]
    fn fleet_finisher_runs_replicas() {
        let report = LoopBuilder::new(workloads::simple())
            .sim_config(SimConfig::constant_etf(0.5))
            .fleet(6)
            .threads(2)
            .run(20)
            .unwrap();
        assert_eq!(report.loops, 6);
    }

    #[test]
    fn distributed_rejects_the_in_loop_lane_model() {
        let err = LoopBuilder::new(workloads::simple())
            .lanes(LaneModel::lossy(0.1, 7))
            .distributed(NetConfig::channel())
            .unwrap_err();
        assert!(err.to_string().contains("report_lanes"), "{err}");
    }

    #[test]
    fn fleet_rejects_unsupported_options_at_run() {
        let err = LoopBuilder::new(workloads::simple())
            .quantized_rates(8)
            .fleet(2)
            .run(10)
            .unwrap_err();
        assert!(err.to_string().contains("quantized_rates"), "{err}");
    }
}
