//! Closed-loop orchestration, experiments and metrics for the EUCON
//! reproduction.
//!
//! This crate wires the `eucon-sim` plant to the `eucon-control`
//! controllers and provides the experimental protocols of the paper's §7:
//!
//! * [`ClosedLoop`] — the distributed feedback loop of §4: sample the
//!   utilization monitors each period, run the controller, apply the rate
//!   modulators.
//! * [`DistributedLoop`] — the same loop with the node split made real:
//!   controller node and per-processor nodes exchanging binary frames
//!   over pluggable transport lanes (`eucon-net`) — ideal in-process
//!   channels (bit-identical traces) or loopback TCP.
//! * [`ControllerSpec`] — pick EUCON, OPEN, or the PID ablation baseline.
//! * [`Plant`] — the sensing/actuation surface behind every loop: the
//!   simulator ([`SimPlant`], the default), recorded-telemetry replay
//!   ([`ReplayPlant`]), or real OS worker processes (`OsPlant`, behind
//!   the `os-plant` feature); chosen per loop with the `plant(...)`
//!   builder option (see DESIGN.md §18).
//! * [`FleetRunner`] — thousands of independent loops packed onto a
//!   work-stealing thread pool, with per-loop trace digests that are
//!   bit-identical across thread counts (see DESIGN.md §14).
//! * [`ChurnPlan`] / [`AdmissionPolicy`] — runtime membership: scripted
//!   or stochastic task arrivals, departures and mode changes, gated by
//!   the §6.2 utilization-threshold admission test, with incremental
//!   plant-model updates in the controller (see DESIGN.md §15).
//! * [`experiments`] — Experiment I ([`SteadyRun`], constant etf sweeps →
//!   Figures 4 and 5) and Experiment II ([`VaryingRun`], the 0.5 → 0.9 →
//!   0.33 step profile → Figures 6–8).
//! * [`metrics`] — windowed mean/σ, the paper's acceptability criterion
//!   (±0.02 mean, σ < 0.05) and settling times.
//! * [`telemetry`] — the per-period observability layer: a fixed metric
//!   registry (QP solver internals, supervisor transitions, tracking
//!   error, engine counters, phase timings) exported through pluggable
//!   sinks; see [`RunResult::metrics`] for the consolidated view.
//! * [`render`] — CSV / aligned-table / ASCII-plot output for the figure
//!   regeneration binaries; [`svg`] renders the recorded series as
//!   standalone SVG figures.
//!
//! # Example
//!
//! ```
//! use eucon_core::{ClosedLoop, ControllerSpec, metrics};
//! use eucon_sim::SimConfig;
//! use eucon_tasks::workloads;
//!
//! # fn main() -> Result<(), eucon_core::CoreError> {
//! // Figure 3(a): SIMPLE at half the estimated execution times.
//! let mut cl = ClosedLoop::builder(workloads::simple())
//!     .sim_config(SimConfig::constant_etf(0.5))
//!     .controller(ControllerSpec::Eucon(eucon_control::MpcConfig::simple()))
//!     .build()?;
//! let result = cl.run(150);
//! let tail = metrics::window(&result.trace.utilization_series(0), 100, 150);
//! assert!((tail.mean - 0.828).abs() < 0.03);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
mod closed_loop;
mod distributed;
mod error;
pub mod experiments;
mod factory;
mod fleet;
mod lanes;
mod loop_builder;
pub mod metrics;
#[cfg(feature = "os-plant")]
pub mod os_plant;
mod plant;
pub mod render;
mod replay;
pub mod service;
mod shardnet;
pub mod svg;
pub mod telemetry;
mod trace;

pub use admission::{
    AdmissionEvent, AdmissionPolicy, ChurnEvent, ChurnPlan, ChurnSummary, RejectReason,
};
pub use closed_loop::{
    ClosedLoop, ClosedLoopBuilder, ControllerSpec, FaultSummary, RunMetrics, RunResult,
    DEFAULT_SAMPLING_PERIOD,
};
pub use distributed::{DistributedLoop, DistributedLoopBuilder, LaneEngine, NetBackend, NetConfig};
pub use error::CoreError;
pub use experiments::{SteadyRun, SweepPoint, VaryingRun};
pub use factory::{factory_fn, ControllerFactory};
pub use fleet::{FleetConfig, FleetLoopSpec, FleetReport, FleetRunner};
pub use lanes::{LaneModel, LaneState};
pub use loop_builder::{FleetPlan, LoopBuilder};
#[cfg(feature = "os-plant")]
pub use os_plant::{OsPlant, OsPlantConfig};
pub use plant::{Plant, PlantFactory, SimPlant, SimPlantFactory};
pub use replay::{ReplayError, ReplayPlant, ReplayTrace, REPLAY_SCHEMA_VERSION};
pub use service::{
    AdminResponse, ControlService, EvictionPolicy, ServiceClient, ServiceHandle, ServiceSummary,
    TenantEvent, TenantHealth, TenantId, TenantReport, TenantSpec,
};
pub use shardnet::{BoundaryMode, NetShardedController, ShardBoundaryNet, ShardNetStats};
pub use trace::{StepAnnotations, Trace, TraceStep};

/// The transport layer of distributed mode, re-exported: the
/// [`net::Transport`] trait, the wire [`net::Frame`] format, the channel
/// and TCP backends and the [`net::DelayLoss`] middleware.
pub use eucon_net as net;
