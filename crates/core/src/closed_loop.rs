//! The EUCON feedback loop: simulator + controller, one exchange per
//! sampling period.

use std::collections::VecDeque;
use std::time::Instant;

use eucon_control::{
    ControlError, ControlMode, DecentralizedController, IndependentPid, MpcConfig, MpcController,
    OpenLoop, RateController, ShardedController, Supervised, SupervisorConfig,
};
use eucon_math::Vector;
use eucon_sim::{DeadlineStats, EngineCounters, FaultInjector, FaultPlan, SimConfig, Simulator};
use eucon_tasks::{rms_set_points, ProcessorId, Task, TaskId, TaskSet};

use crate::admission::{
    AdmissionController, AdmissionEvent, AdmissionPolicy, ChurnEvent, ChurnPlan, ChurnSummary,
    PendingArrival, RejectReason,
};
use crate::distributed::{NetConfig, NetRuntime};
use crate::lanes::LaneState;
use crate::metrics::{self, SeriesStats};
use crate::plant::{Plant, PlantFactory, SimPlant};
use crate::shardnet::{BoundaryMode, NetShardedController};
use crate::telemetry::{
    ChurnPeriod, LoopTelemetry, PeriodObservation, PeriodTimings, Registry, Snapshot, TelemetrySink,
};
use crate::trace::StepAnnotations;
use crate::{ControllerFactory, CoreError, LaneModel, Trace, TraceStep};

/// The sampling period used throughout the paper (Table 2): 1000 time
/// units.
pub const DEFAULT_SAMPLING_PERIOD: f64 = 1000.0;

/// Which controller to close the loop with.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ControllerSpec {
    /// The EUCON model-predictive controller with the given configuration.
    Eucon(MpcConfig),
    /// The paper's OPEN baseline (fixed design-time rates).
    Open,
    /// The decoupled per-processor PI baseline with gains `(kp, ki)`.
    Pid {
        /// Proportional gain.
        kp: f64,
        /// Integral gain.
        ki: f64,
    },
    /// The decentralized controller team (DEUCON-style): one local MPC
    /// per processor, coordinating by move exchange.
    Decentralized(MpcConfig),
    /// The cluster-scale sharded team: the processor graph is
    /// partitioned into shards of about `shard_size` processors by
    /// F-matrix coupling (see `ShardPlanner`), each shard runs one local
    /// MPC and shards exchange boundary state per period — in process or
    /// over per-shard `eucon-net` lanes, per [`BoundaryMode`].
    ///
    /// `shard_size = 1` is the decentralized team's problem structure
    /// and is pinned bit-identical to [`ControllerSpec::Decentralized`].
    Sharded {
        /// Local-controller (MPC) configuration.
        mpc: MpcConfig,
        /// Target processors per shard (the planner's size cap).
        shard_size: usize,
        /// How boundary state travels between shards.
        boundary: BoundaryMode,
    },
    /// The EUCON MPC wrapped in a [`Supervised`] watchdog: sensor
    /// validation, graceful degradation to OPEN's design rates when the
    /// sensors or the optimizer fail, automatic re-engagement.
    SupervisedEucon {
        /// Primary-law (MPC) configuration.
        mpc: MpcConfig,
        /// Watchdog thresholds and safe-mode gains.
        supervisor: SupervisorConfig,
    },
}

impl ControllerSpec {
    /// Instantiates the controller for a task set and set points.
    ///
    /// # Errors
    ///
    /// Propagates controller-construction failures.
    pub fn build(
        &self,
        set: &TaskSet,
        set_points: &Vector,
    ) -> Result<Box<dyn RateController>, ControlError> {
        Ok(match self {
            ControllerSpec::Eucon(cfg) => {
                Box::new(MpcController::new(set, set_points.clone(), cfg.clone())?)
            }
            ControllerSpec::Open => Box::new(OpenLoop::design(set, set_points)?),
            ControllerSpec::Pid { kp, ki } => {
                Box::new(IndependentPid::new(set, set_points.clone(), *kp, *ki)?)
            }
            ControllerSpec::Decentralized(cfg) => Box::new(DecentralizedController::new(
                set,
                set_points.clone(),
                cfg.clone(),
            )?),
            ControllerSpec::Sharded {
                mpc,
                shard_size,
                boundary,
            } => match boundary {
                BoundaryMode::InProcess => Box::new(ShardedController::with_shard_size(
                    set,
                    set_points.clone(),
                    mpc.clone(),
                    *shard_size,
                )?),
                _ => Box::new(NetShardedController::new(
                    set,
                    set_points.clone(),
                    mpc.clone(),
                    *shard_size,
                    boundary,
                )?),
            },
            ControllerSpec::SupervisedEucon { mpc, supervisor } => {
                let inner = MpcController::new(set, set_points.clone(), mpc.clone())?;
                let open = OpenLoop::design(set, set_points)?;
                Box::new(
                    Supervised::new(inner, set, supervisor.clone())?
                        .safe_rates(open.rates().clone()),
                )
            }
        })
    }
}

/// Fault and degradation counters accumulated by a closed-loop run (all
/// zero in a fault-free run).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultSummary {
    /// Processor-periods spent crashed (two processors down for one
    /// period count as 2).
    pub crashed_periods: usize,
    /// Processor-periods with a scripted sensor fault active.
    pub sensor_fault_periods: usize,
    /// Rate commands dropped by faulty actuation lanes.
    pub actuation_drops: usize,
    /// Periods the controller reported [`ControlMode::Degraded`].
    pub degraded_periods: usize,
    /// Processor-periods spent with the feedback lane partitioned from
    /// the controller (no report out, no command in).
    pub partitioned_periods: usize,
}

/// Result of a closed-loop run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Per-period utilization and rate trace.
    pub trace: Trace,
    /// End-to-end deadline statistics over the whole run.
    pub deadlines: DeadlineStats,
    /// The utilization set points the controller tracked.
    pub set_points: Vector,
    /// Sampling periods where the controller returned an error and the
    /// previous rates were kept (0 in a healthy loop).
    pub control_errors: usize,
    /// Fault-injection and degradation counters.
    pub faults: FaultSummary,
    /// Event-engine counters accumulated by the simulator over the run
    /// (events processed, in-place reschedules, queue high-water mark).
    pub engine: EngineCounters,
    /// Final telemetry snapshot (QP solver stats, supervisor counters,
    /// phase timings, tracking-error histograms — see DESIGN.md §12).
    pub telemetry: Snapshot,
    /// Runtime-membership activity (all zero for churn-free runs).
    pub churn: ChurnSummary,
    /// Membership decisions taken over the run, in period order (empty
    /// for churn-free runs).
    pub admission_events: Vec<AdmissionEvent>,
}

impl RunResult {
    /// The consolidated metrics view over this run: windowed series
    /// statistics, the paper's acceptability criterion, settling times
    /// and the telemetry snapshot, behind one entry point.
    pub fn metrics(&self) -> RunMetrics<'_> {
        RunMetrics { result: self }
    }
}

/// Read-only metrics view over a [`RunResult`], created by
/// [`RunResult::metrics`].
///
/// # Example
///
/// ```
/// use eucon_core::{ClosedLoop, ControllerSpec};
/// use eucon_sim::SimConfig;
/// use eucon_tasks::workloads;
///
/// # fn main() -> Result<(), eucon_core::CoreError> {
/// let mut cl = ClosedLoop::builder(workloads::simple())
///     .sim_config(SimConfig::constant_etf(0.5))
///     .controller(ControllerSpec::Eucon(eucon_control::MpcConfig::simple()))
///     .build()?;
/// let result = cl.run(150);
/// let m = result.metrics();
/// assert!(m.acceptable(0, 100, 150), "P1 regulated to its set point");
/// assert_eq!(m.telemetry().counter("periods"), Some(150));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct RunMetrics<'a> {
    result: &'a RunResult,
}

impl RunMetrics<'_> {
    /// Mean and deviation of processor `p`'s utilization over the
    /// half-open period window `[from, to)`.
    pub fn utilization(&self, p: usize, from: usize, to: usize) -> SeriesStats {
        metrics::window(&self.result.trace.utilization_series(p), from, to)
    }

    /// The paper's acceptability criterion (§7.1) for processor `p` over
    /// `[from, to)`: mean within ±0.02 of the set point, σ below 0.05.
    pub fn acceptable(&self, p: usize, from: usize, to: usize) -> bool {
        metrics::acceptable(self.utilization(p, from, to), self.result.set_points[p])
    }

    /// First period from which processor `p` stays within `±band` of its
    /// set point for the rest of the run (see [`metrics::settling_index`]).
    pub fn settling(&self, p: usize, band: f64, from: usize) -> Option<usize> {
        metrics::settling_index(
            &self.result.trace.utilization_series(p),
            self.result.set_points[p],
            band,
            from,
        )
    }

    /// The run's final telemetry snapshot.
    pub fn telemetry(&self) -> &Snapshot {
        &self.result.telemetry
    }
}

/// The distributed feedback control loop of the paper's §4: at the end of
/// every sampling period the utilization monitors report `u(k)` over their
/// feedback lanes, the controller computes new rates, and the rate
/// modulators apply them.
///
/// # Example
///
/// ```
/// use eucon_core::{ClosedLoop, ControllerSpec};
/// use eucon_sim::SimConfig;
/// use eucon_tasks::workloads;
///
/// # fn main() -> Result<(), eucon_core::CoreError> {
/// let mut cl = ClosedLoop::builder(workloads::simple())
///     .sim_config(SimConfig::constant_etf(0.5))
///     .controller(ControllerSpec::Eucon(eucon_control::MpcConfig::simple()))
///     .build()?;
/// let result = cl.run(150);
/// // EUCON converges to the 0.828 set points despite etf = 0.5.
/// let u1 = result.trace.utilization_series(0);
/// let tail = eucon_core::metrics::window(&u1, 100, 150);
/// assert!((tail.mean - 0.828).abs() < 0.03);
/// # Ok(())
/// # }
/// ```
pub struct ClosedLoop {
    /// The plant under control — the simulator by default; a telemetry
    /// replayer or a real-OS shim via the `plant(...)` builder option.
    plant: Box<dyn Plant>,
    controller: Box<dyn RateController>,
    ts: f64,
    period: usize,
    set_points: Vector,
    trace: Trace,
    control_errors: usize,
    lanes: LaneState,
    /// Per-task discrete rate grids when actuation is quantized.
    rate_grid: Option<Vec<Vec<f64>>>,
    /// Fault injector driving scripted/stochastic faults (None = the
    /// fault-free fast path: zero per-period overhead).
    injector: Option<FaultInjector>,
    /// Processor hosting each task's rate modulator (first subtask) —
    /// actuation-lane faults are routed per task through this map.
    head_proc: Vec<usize>,
    /// Rate commands in flight when actuation is delayed.
    act_queue: VecDeque<Vector>,
    act_delay: usize,
    summary: FaultSummary,
    /// Whether steps are accumulated into the trace (off for long
    /// unattended runs that only need the final statistics).
    record: bool,
    /// True utilizations of the current period (persistent scratch —
    /// rewritten in place every period, never reallocated).
    u_scratch: Vector,
    /// What the monitors reported after sensor faults (persistent scratch,
    /// only touched when an injector is configured).
    sensed: Vector,
    /// Processors whose actuation lane dropped this period (persistent
    /// fault-routing scratch).
    dropped: Vec<usize>,
    /// The most recent period's record, rewritten in place each step.
    last: TraceStep,
    /// Metric registry + sinks, fed at the end of every period.  Boxed so
    /// the loop struct itself stays compact (it is moved by value out of
    /// the builder, and its hot fields should share cache lines).
    telemetry: Box<LoopTelemetry>,
    /// Transport lanes in distributed mode (`None` = single-process loop;
    /// phases 4 and 6 then bypass the lanes entirely).
    pub(crate) net: Option<Box<NetRuntime>>,
    /// Last utilization each feedback lane delivered — what a partitioned
    /// lane's entry falls back to in the single-process loop (distributed
    /// mode keeps its own hold inside [`NetRuntime`]).
    lane_hold: Vector,
    /// Whether the fault plan schedules lane partitions (skips the
    /// partition bookkeeping entirely when it does not).
    has_partitions: bool,
    /// Runtime-membership executor (`None` = static task set: the churn
    /// machinery is bypassed entirely, keeping churn-free traces
    /// bit-identical to builds without it).
    admission: Option<Box<AdmissionController>>,
    /// Controller column → sim task id.  Identity until a departure
    /// shrinks the plant model; sim slots are never recycled, so the two
    /// arities diverge under churn.  Only consulted when `admission` is
    /// engaged.
    ctrl_cols: Vec<TaskId>,
    /// Full sim-arity actuation command (persistent scratch — rewritten
    /// in place every period on the slow path, grown on admission).
    act_cmd: Vector,
}

impl std::fmt::Debug for ClosedLoop {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClosedLoop")
            .field("controller", &self.controller.name())
            .field("ts", &self.ts)
            .field("period", &self.period)
            .finish_non_exhaustive()
    }
}

/// Builder for [`ClosedLoop`].
///
/// All inputs are validated at [`ClosedLoopBuilder::build`], which
/// returns [`CoreError::Config`] for out-of-domain values (non-finite or
/// non-positive set points or sampling period, fewer than two quantized
/// rate levels) instead of panicking in the setters.
pub struct ClosedLoopBuilder {
    set: TaskSet,
    sim_config: SimConfig,
    factory: Box<dyn ControllerFactory>,
    set_points: Option<Vector>,
    ts: f64,
    lanes: LaneModel,
    rate_levels: Option<usize>,
    faults: FaultPlan,
    record: bool,
    sinks: Vec<Box<dyn TelemetrySink>>,
    batch_rows: usize,
    churn: ChurnPlan,
    admission_policy: Option<AdmissionPolicy>,
    plant: Option<Box<dyn PlantFactory>>,
}

impl std::fmt::Debug for ClosedLoopBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClosedLoopBuilder")
            .field("controller", &self.factory.label())
            .field("plant", &self.plant.as_ref().map_or("sim", |p| p.label()))
            .field("ts", &self.ts)
            .field("lanes", &self.lanes)
            .finish_non_exhaustive()
    }
}

impl ClosedLoopBuilder {
    /// Chooses the simulator configuration (default: `etf = 1`, constant
    /// execution times).
    pub fn sim_config(mut self, cfg: SimConfig) -> Self {
        self.sim_config = cfg;
        self
    }

    /// Chooses the controller (default: EUCON with SIMPLE's parameters).
    ///
    /// Accepts anything implementing [`ControllerFactory`]: a
    /// [`ControllerSpec`] for the built-in controllers, a prebuilt
    /// `Box<dyn RateController>` (its current rates are applied to the
    /// plant at time zero), or a closure wrapped by
    /// [`crate::factory_fn`].
    pub fn controller(mut self, factory: impl ControllerFactory + 'static) -> Self {
        self.factory = Box::new(factory);
        self
    }

    /// Chooses the plant backend the loop senses and actuates (default:
    /// the `eucon-sim` simulator, exactly as before this option
    /// existed).
    ///
    /// Accepts any [`PlantFactory`]: [`crate::SimPlantFactory`] (the
    /// explicit spelling of the default), a loaded
    /// [`crate::ReplayTrace`], or — with the `os-plant` feature — an
    /// `OsPlantConfig` driving real worker processes.
    pub fn plant(mut self, factory: impl PlantFactory + 'static) -> Self {
        self.plant = Some(Box::new(factory));
        self
    }

    /// Attaches a telemetry sink; the loop pushes one row per sampling
    /// period into every attached sink (default: none — the metric
    /// registry alone, which keeps the period step allocation-free).
    ///
    /// Sink I/O failures never stop the loop; they are counted in the
    /// `sink_errors` metric.
    pub fn telemetry_sink(mut self, sink: impl TelemetrySink + 'static) -> Self {
        self.sinks.push(Box::new(sink));
        self
    }

    /// Batches sink export: rows accumulate in preallocated buffers and
    /// reach the sinks once per `rows` periods instead of once per period
    /// (default `0` = unbatched).  A run that ends mid-batch delivers the
    /// partial batch exactly once at its final flush and counts it in the
    /// `partial_flushes` metric.  Large fleets of loops use this to
    /// amortize per-period sink traffic.
    pub fn telemetry_batch(mut self, rows: usize) -> Self {
        self.batch_rows = rows;
        self
    }

    /// Overrides the utilization set points (default: the RMS bounds of
    /// the paper's eq. 13).
    pub fn set_points(mut self, b: Vector) -> Self {
        self.set_points = Some(b);
        self
    }

    /// Chooses the feedback-lane network model (default: the paper's
    /// ideal lanes — zero delay, zero loss).
    pub fn lanes(mut self, model: LaneModel) -> Self {
        self.lanes = model;
        self
    }

    /// Installs a fault-injection plan: scripted or stochastic processor
    /// crashes, execution-time bursts, sensor faults and actuation-lane
    /// faults (default: no faults).
    ///
    /// Crashed processors execute nothing, pile up a backlog and report
    /// `NaN` utilization (the monitor dies with its host); the closed
    /// loop feeds whatever the faulty sensors produce straight to the
    /// controller, which is exactly what [`ControllerSpec::SupervisedEucon`]
    /// exists to survive.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Installs a runtime-membership plan: scripted task arrivals,
    /// departures and mode changes (default: none — a static task set).
    ///
    /// Arrivals pass through the admission test of the configured
    /// [`AdmissionPolicy`]; departures drain their in-flight jobs cleanly
    /// while the controller shrinks its plant model incrementally.  An
    /// empty plan leaves the loop byte-identical to one built without
    /// this call.
    pub fn churn(mut self, plan: ChurnPlan) -> Self {
        self.churn = plan;
        self
    }

    /// Overrides the admission policy governing runtime arrivals
    /// (default: [`AdmissionPolicy::default`]).  Also engages the churn
    /// machinery even for an empty plan, which is only useful in tests.
    pub fn admission(mut self, policy: AdmissionPolicy) -> Self {
        self.admission_policy = Some(policy);
        self
    }

    /// Quantizes actuated rates to a per-task geometric grid of `levels`
    /// values between `Rmin` and `Rmax` (default: continuous rates).
    ///
    /// Models real actuators — e.g. video pipelines that only support a
    /// discrete set of frame rates.  The controller still reasons in
    /// continuous rates; only the value applied to the plant snaps to the
    /// grid.
    ///
    /// `levels < 2` is rejected by [`ClosedLoopBuilder::build`].
    pub fn quantized_rates(mut self, levels: usize) -> Self {
        self.rate_levels = Some(levels);
        self
    }

    /// Turns trace recording on or off (default: on).
    ///
    /// With recording off the loop keeps only the most recent
    /// [`TraceStep`] (returned by [`ClosedLoop::step`]) and the running
    /// statistics; long unattended runs — chaos sweeps, scaling studies —
    /// avoid the per-period trace allocations entirely, making the
    /// fault-free period step allocation-free.
    pub fn record_trace(mut self, on: bool) -> Self {
        self.record = on;
        self
    }

    /// Overrides the sampling period (default
    /// [`DEFAULT_SAMPLING_PERIOD`]).
    ///
    /// Non-positive or non-finite values are rejected by
    /// [`ClosedLoopBuilder::build`].
    pub fn sampling_period(mut self, ts: f64) -> Self {
        self.ts = ts;
        self
    }

    /// Builds the loop.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Config`] when an input fails validation —
    /// a non-positive or non-finite sampling period, fewer than two
    /// quantized rate levels, set points that are non-finite,
    /// non-positive, or of the wrong arity, or a malformed churn plan —
    /// [`CoreError::Sim`] for a malformed fault plan, and propagates
    /// controller-construction failures as [`CoreError::Control`].
    pub fn build(self) -> Result<ClosedLoop, CoreError> {
        if !(self.ts > 0.0 && self.ts.is_finite()) {
            return Err(CoreError::Config(format!(
                "sampling period must be positive and finite, got {}",
                self.ts
            )));
        }
        self.faults.validate(self.set.num_processors())?;
        self.churn.validate(&self.set)?;
        if let Some(levels) = self.rate_levels {
            if levels < 2 {
                return Err(CoreError::Config(format!(
                    "quantized actuation needs at least two rate levels, got {levels}"
                )));
            }
        }
        let set_points = self.set_points.unwrap_or_else(|| rms_set_points(&self.set));
        if set_points.len() != self.set.num_processors() {
            return Err(CoreError::Config(format!(
                "need one set point per processor: got {} for {} processors",
                set_points.len(),
                self.set.num_processors()
            )));
        }
        if let Some(p) = (0..set_points.len()).find(|&p| {
            let b = set_points[p];
            !b.is_finite() || b <= 0.0
        }) {
            return Err(CoreError::Config(format!(
                "set point for P{} must be positive and finite, got {}",
                p + 1,
                set_points[p]
            )));
        }
        let controller = self.factory.build_controller(&self.set, &set_points)?;
        let rate_grid = self.rate_levels.map(|levels| {
            self.set
                .tasks()
                .iter()
                .map(|t| {
                    // Geometric grid covers wide rate ranges evenly in log
                    // space (rate ranges span 10-20x in the paper).
                    let lo = t.rate_min();
                    let hi = t.rate_max();
                    (0..levels)
                        .map(|i| lo * (hi / lo).powf(i as f64 / (levels - 1) as f64))
                        .collect()
                })
                .collect()
        });
        let head_proc: Vec<usize> = self
            .set
            .tasks()
            .iter()
            .map(|t| t.subtasks()[0].processor.0)
            .collect();
        let injector = if self.faults.is_empty() {
            None
        } else {
            Some(FaultInjector::new(
                self.faults.clone(),
                self.set.num_processors(),
            ))
        };
        let act_delay = self.faults.actuation_delay_periods();
        let has_partitions = self.faults.has_partitions();
        let num_procs = self.set.num_processors();
        let num_tasks = self.set.num_tasks();
        // Churn machinery engages only for a non-empty plan (or an
        // explicit policy); otherwise churn-free runs take byte-identical
        // code paths to builds without it.
        let admission = if !self.churn.is_empty() || self.admission_policy.is_some() {
            Some(Box::new(AdmissionController::new(
                self.admission_policy.unwrap_or_default(),
                self.churn,
                num_tasks,
            )))
        } else {
            None
        };
        let mut plant: Box<dyn Plant> = match self.plant {
            Some(factory) => {
                let plant = factory.build_plant(&self.set, &self.sim_config)?;
                if plant.num_processors() != num_procs {
                    return Err(CoreError::Config(format!(
                        "plant backend '{}' exposes {} processors, workload has {}",
                        plant.name(),
                        plant.num_processors(),
                        num_procs
                    )));
                }
                if plant.num_tasks() != num_tasks {
                    return Err(CoreError::Config(format!(
                        "plant backend '{}' exposes {} tasks, workload has {}",
                        plant.name(),
                        plant.num_tasks(),
                        num_tasks
                    )));
                }
                plant
            }
            // The default path moves the set and config straight into the
            // simulator — no clone, bit-identical to the pre-`Plant` loop.
            None => Box::new(SimPlant::new(Simulator::new(self.set, self.sim_config))),
        };
        if admission.is_some() && !plant.supports_membership() {
            return Err(CoreError::Config(format!(
                "plant backend '{}' does not support runtime membership; \
                 churn plans and admission policies need a simulator-backed plant",
                plant.name()
            )));
        }
        // Apply the controller's initial rates from time zero (OPEN's
        // design rates take effect immediately; feedback controllers start
        // from the task set's initial rates, a no-op here).
        plant.apply_rates(controller.rates());
        // The full metric registry is declared (and allocated) here, once;
        // per-period recording updates it strictly in place.
        let mut telemetry = Box::new(LoopTelemetry::new(num_procs));
        for sink in self.sinks {
            telemetry.add_sink(sink);
        }
        if self.batch_rows > 0 {
            telemetry.set_batch(self.batch_rows);
        }
        Ok(ClosedLoop {
            plant,
            controller,
            ts: self.ts,
            period: 0,
            set_points,
            trace: Trace::new(),
            control_errors: 0,
            lanes: LaneState::new(self.lanes),
            rate_grid,
            injector,
            head_proc,
            act_queue: VecDeque::new(),
            act_delay,
            summary: FaultSummary::default(),
            record: self.record,
            u_scratch: Vector::zeros(num_procs),
            sensed: Vector::zeros(num_procs),
            dropped: Vec::new(),
            last: TraceStep::clean(0.0, Vector::zeros(num_procs), Vector::zeros(num_tasks)),
            telemetry,
            net: None,
            lane_hold: Vector::zeros(num_procs),
            has_partitions,
            admission,
            ctrl_cols: (0..num_tasks).map(TaskId).collect(),
            act_cmd: Vector::zeros(num_tasks),
        })
    }
}

impl ClosedLoop {
    /// Starts building a loop around a task set.
    pub fn builder(set: TaskSet) -> ClosedLoopBuilder {
        ClosedLoopBuilder {
            set,
            sim_config: SimConfig::default(),
            factory: Box::new(ControllerSpec::Eucon(MpcConfig::simple())),
            set_points: None,
            ts: DEFAULT_SAMPLING_PERIOD,
            lanes: LaneModel::ideal(),
            rate_levels: None,
            faults: FaultPlan::none(),
            record: true,
            sinks: Vec::new(),
            batch_rows: 0,
            churn: ChurnPlan::none(),
            admission_policy: None,
            plant: None,
        }
    }

    /// The utilization set points in force.
    pub fn set_points(&self) -> &Vector {
        &self.set_points
    }

    /// The controller's name (for reports).
    pub fn controller_name(&self) -> &'static str {
        self.controller.name()
    }

    /// Number of sampling periods executed so far.
    pub fn periods_elapsed(&self) -> usize {
        self.period
    }

    /// How many sampling periods the controller failed and the previous
    /// rates were kept (expected to stay 0).
    pub fn control_errors(&self) -> usize {
        self.control_errors
    }

    /// Borrow the live plant (read-only).
    pub fn plant(&self) -> &dyn Plant {
        &*self.plant
    }

    /// Borrow the live simulator (read-only).
    ///
    /// # Panics
    ///
    /// Panics when the loop drives a non-simulator backend (a replay
    /// trace or a real-OS plant) — use [`ClosedLoop::plant`] for
    /// backend-agnostic access.
    pub fn simulator(&self) -> &Simulator {
        self.plant
            .as_simulator()
            .expect("loop is not driving the simulator backend")
    }

    /// Connects the transport lanes of a distributed loop (called by
    /// `DistributedLoopBuilder::build`; the loop must not have stepped).
    pub(crate) fn attach_net(&mut self, cfg: &NetConfig) -> Result<(), CoreError> {
        self.net = Some(Box::new(NetRuntime::new(
            cfg,
            self.set_points.len(),
            &self.head_proc,
        )?));
        Ok(())
    }

    /// Fault and degradation counters so far.
    pub fn fault_summary(&self) -> FaultSummary {
        let mut s = self.summary;
        if let Some(inj) = &self.injector {
            s.sensor_fault_periods = inj.sensor_fault_periods();
            s.actuation_drops = inj.actuation_drops();
        }
        s
    }

    /// Executes one sampling period: inject scheduled faults, advance the
    /// plant, sample the monitors, update the controller, apply the rates.
    ///
    /// Controller failures (which do not occur under normal configurations)
    /// keep the previous rates and are counted in
    /// [`ClosedLoop::control_errors`], mirroring a real deployment where a
    /// controller fault must not stop the plant.
    pub fn step(&mut self) -> &TraceStep {
        // The fault schedule indexes periods from 0.
        let k = self.period;
        self.period += 1;
        // 0. Runtime membership: due arrivals face the admission test
        // (against the previous period's utilization sample), departures
        // drain, deferred arrivals retry.  A no-op without a churn plan.
        self.process_churn(k);
        let mut ann = StepAnnotations::default();
        // Phase boundaries for the span histograms — plain timestamps
        // rather than scoped guards so the hot loop stays free of borrow
        // gymnastics (`Instant::now` does not allocate).
        let t0 = Instant::now();

        // 1. Fault injection acts on the plant before the period runs.
        if let Some(inj) = &mut self.injector {
            ann.crashed = inj.begin_period(k);
            self.summary.crashed_periods += ann.crashed.len();
            for p in 0..self.set_points.len() {
                self.plant
                    .set_speed_override(ProcessorId(p), inj.speed_factor(k, p));
                if ann.crashed.contains(&p) {
                    self.plant.crash_processor(ProcessorId(p));
                } else {
                    self.plant.recover_processor(ProcessorId(p));
                }
            }
        }
        if self.has_partitions {
            if let Some(inj) = &self.injector {
                let n = self.set_points.len();
                ann.partitioned
                    .extend((0..n).filter(|&p| inj.lane_partitioned(k, p)));
                self.summary.partitioned_periods += ann.partitioned.len();
            }
        }

        // 2. Run the plant and sample the true utilizations into the
        // persistent scratch (no allocation).
        let t_end = self.period as f64 * self.ts;
        self.plant.advance_to(t_end);
        let t_simulated = Instant::now();
        self.plant.sample_into(&mut self.u_scratch);

        // 3. Sensor faults corrupt what the monitors report (a crashed
        // processor's monitor dies with it and reports NaN).  Without an
        // injector the truth is the report and the scratch is untouched.
        let mut sensor_faulted = false;
        if let Some(inj) = &mut self.injector {
            self.sensed.copy_from(&self.u_scratch);
            for &p in &ann.crashed {
                self.sensed[p] = f64::NAN;
            }
            inj.corrupt_sensors(k, &mut self.sensed);
            sensor_faulted = self.sensed != self.u_scratch;
        }
        let u_report = if sensor_faulted {
            &self.sensed
        } else {
            &self.u_scratch
        };

        // 4. The report crosses the feedback lanes (possibly delayed or
        // lost, or — in distributed mode — real transport frames); `None`
        // means it arrived unchanged.
        let mut laned = match &mut self.net {
            Some(net) => net.exchange_reports(k, u_report, &ann.partitioned),
            None => self.lanes.transmit(u_report),
        };
        if self.net.is_none() && self.has_partitions {
            // A partitioned lane delivers nothing: the controller keeps
            // the lane's last delivered value for those entries.
            if !ann.partitioned.is_empty() {
                let mut v = laned.take().unwrap_or_else(|| u_report.clone());
                for &p in &ann.partitioned {
                    v[p] = self.lane_hold[p];
                }
                laned = Some(v);
            }
            let delivered = laned.as_ref().unwrap_or(u_report);
            for p in 0..self.set_points.len() {
                if !ann.partitioned.contains(&p) {
                    self.lane_hold[p] = delivered[p];
                }
            }
        }
        let u_ctrl = laned.as_ref().unwrap_or(u_report);

        // 5. Control update: the controller commits its new rates
        // internally; on error the previous rates stay in force.  Silent
        // lanes are flagged first, so a watchdog treats them like dead
        // monitors.
        let t_sampled = Instant::now();
        if let Some(net) = &self.net {
            for p in 0..self.set_points.len() {
                if net.lane_stale(p) {
                    self.controller.note_stale(p);
                }
            }
        } else {
            for &p in &ann.partitioned {
                self.controller.note_stale(p);
            }
        }
        if self.controller.update(u_ctrl).is_err() {
            self.control_errors += 1;
            ann.control_error = true;
        }
        if self.controller.mode() == ControlMode::Degraded {
            ann.degraded = true;
            self.summary.degraded_periods += 1;
        }
        let t_controlled = Instant::now();

        // 6. Actuation: quantize, then cross the (possibly faulty)
        // actuation lanes to the rate modulators.  The common fault-free
        // configuration hands the controller's rates to the modulators by
        // reference — no copy, no allocation.
        if self.rate_grid.is_none()
            && self.act_delay == 0
            && self.injector.is_none()
            && self.net.is_none()
            && self.admission.is_none()
        {
            self.plant.apply_rates(self.controller.rates());
        } else {
            // Assemble this period's full sim-arity command into the
            // persistent scratch (no allocation in steady state).
            if self.admission.is_some() {
                // Under churn the controller may command fewer columns
                // than the sim has slots: start from the rates in force
                // (departed / unmanaged slots keep theirs) and route the
                // controller's output through the live column map.
                self.act_cmd.copy_from_slice(self.plant.rates_in_force());
                let rates = self.controller.rates();
                for (c, &tid) in self.ctrl_cols.iter().enumerate() {
                    let r = rates[c];
                    self.act_cmd[tid.0] = match &self.rate_grid {
                        Some(grid) => snap_to_grid(&grid[tid.0], r),
                        None => r,
                    };
                }
            } else {
                match &self.rate_grid {
                    Some(grid) => {
                        let rates = self.controller.rates();
                        for t in 0..rates.len() {
                            self.act_cmd[t] = snap_to_grid(&grid[t], rates[t]);
                        }
                    }
                    None => self.act_cmd.copy_from(self.controller.rates()),
                }
            }
            let arriving = if self.act_delay > 0 {
                self.act_queue.push_back(self.act_cmd.clone());
                if self.act_queue.len() > self.act_delay {
                    let front = self.act_queue.pop_front().expect("queue just pushed");
                    // `clone_from` (not `copy_from`): a queued command may
                    // predate an admission and be one entry short.
                    self.act_cmd.clone_from(&front);
                    while self.act_cmd.len() < self.plant.rates_in_force().len() {
                        let t = self.act_cmd.len();
                        self.act_cmd.push(self.plant.rates_in_force()[t]);
                    }
                    true
                } else {
                    // Nothing has crossed the actuation lanes yet; the
                    // rates in force stay in force.
                    false
                }
            } else {
                true
            };
            if arriving {
                if let Some(inj) = &mut self.injector {
                    // A dropped lane means every task modulated on that
                    // processor keeps its previous rate this period.
                    let n = self.set_points.len();
                    self.dropped.clear();
                    self.dropped
                        .extend((0..n).filter(|&p| inj.actuation_lost(p)));
                    if !self.dropped.is_empty() {
                        let in_force = self.plant.rates_in_force();
                        for (t, &p) in self.head_proc.iter().enumerate() {
                            if self.dropped.contains(&p) {
                                self.act_cmd[t] = in_force[t];
                            }
                        }
                        ann.actuation_dropped = self.dropped.clone();
                    }
                }
                if let Some(net) = &mut self.net {
                    // Distributed mode: the command crosses the lanes and
                    // the modulators merge whatever arrived (a silent or
                    // partitioned lane keeps its tasks' rates in force).
                    let merged = net.actuate(
                        k,
                        &self.act_cmd,
                        self.plant.rates_in_force(),
                        &ann.partitioned,
                    );
                    self.plant.apply_rates(merged);
                } else {
                    if !ann.partitioned.is_empty() {
                        // Partitioned lanes can't deliver commands either:
                        // their tasks keep the rates in force.
                        let in_force = self.plant.rates_in_force();
                        for (t, &p) in self.head_proc.iter().enumerate() {
                            if ann.partitioned.contains(&p) {
                                self.act_cmd[t] = in_force[t];
                            }
                        }
                    }
                    self.plant.apply_rates(&self.act_cmd);
                }
            }
        }
        let t_actuated = Instant::now();

        // 7. Telemetry: fold this period's observations into the metric
        // registry (and any sinks) — controller internals via the
        // consolidated observer interface, engine counters as deltas.
        let net_obs = self.net.as_mut().map(|n| n.period_observation());
        let churn_obs = self.admission.as_ref().map(|a| ChurnPeriod {
            admitted: a.period_delta.admitted,
            rejected: a.period_delta.rejected,
            deferred: a.period_delta.deferred,
            departed: a.period_delta.departed,
            mode_changes: a.period_delta.mode_changes,
            incremental_updates: a.period_delta.incremental_updates,
            model_rebuilds: a.period_delta.model_rebuilds,
            update_ns: &a.update_ns,
        });
        self.telemetry.record_period(PeriodObservation {
            period: k as u64,
            time: t_end,
            utilization: &self.u_scratch,
            set_points: &self.set_points,
            controller: self.controller.telemetry(),
            control_error: ann.control_error,
            crashed: ann.crashed.len(),
            actuation_drops_total: self
                .injector
                .as_ref()
                .map_or(0, |inj| inj.actuation_drops()),
            engine: self.plant.counters(),
            timings: PeriodTimings {
                simulate_ns: (t_simulated - t0).as_nanos() as u64,
                sample_ns: (t_sampled - t_simulated).as_nanos() as u64,
                control_ns: (t_controlled - t_sampled).as_nanos() as u64,
                actuate_ns: (t_actuated - t_controlled).as_nanos() as u64,
            },
            net: net_obs,
            churn: churn_obs,
        });

        // 8. Record into the reused step: the true utilizations, plus what
        // the controller actually received whenever that differed.
        self.last.time = t_end;
        self.last.utilization.copy_from(&self.u_scratch);
        self.last.received = if laned.is_some() {
            laned
        } else if sensor_faulted {
            Some(self.sensed.clone())
        } else {
            None
        };
        self.last.rates.copy_from_slice(self.plant.rates_in_force());
        self.last.annotations = ann;
        if self.record {
            self.trace.push(self.last.clone());
            return self.trace.steps().last().expect("step just pushed");
        }
        &self.last
    }

    /// Runs `periods` sampling periods and returns the accumulated result.
    ///
    /// The recorded trace is *moved* into the result (long runs do not pay
    /// a second copy of the whole time series); the loop keeps running
    /// state, but its internal trace restarts empty.
    pub fn run(&mut self, periods: usize) -> RunResult {
        for _ in 0..periods {
            self.step();
        }
        self.telemetry.flush();
        RunResult {
            trace: std::mem::take(&mut self.trace),
            deadlines: self.plant.deadline_stats(),
            set_points: self.set_points.clone(),
            control_errors: self.control_errors,
            faults: self.fault_summary(),
            engine: self.plant.counters(),
            telemetry: self.telemetry.snapshot(),
            churn: self.churn_summary(),
            admission_events: self.admission_events().to_vec(),
        }
    }

    /// Consumes the loop, returning the final result.
    pub fn into_result(mut self) -> RunResult {
        self.telemetry.flush();
        RunResult {
            control_errors: self.control_errors,
            faults: self.fault_summary(),
            engine: self.plant.counters(),
            telemetry: self.telemetry.snapshot(),
            churn: self.churn_summary(),
            admission_events: self
                .admission
                .as_ref()
                .map(|a| a.log().to_vec())
                .unwrap_or_default(),
            trace: self.trace,
            deadlines: self.plant.deadline_stats(),
            set_points: self.set_points,
        }
    }

    /// Read-only view of the live metric registry (counters, gauges and
    /// histograms updated every sampling period).
    pub fn telemetry(&self) -> &Registry {
        self.telemetry.registry()
    }

    /// Membership decisions taken so far (empty without a churn plan).
    pub fn admission_events(&self) -> &[AdmissionEvent] {
        self.admission.as_ref().map_or(&[], |a| a.log())
    }

    /// Cumulative runtime-membership activity (all zero without a churn
    /// plan).
    pub fn churn_summary(&self) -> ChurnSummary {
        self.admission
            .as_ref()
            .map(|a| a.summary())
            .unwrap_or_default()
    }

    /// Applies due membership changes at the top of period `k`: deferred
    /// arrivals retry first (FIFO), then scripted events fire in plan
    /// order.  Steady-state periods — nothing pending, no event due —
    /// return after a constant-time check, without allocating.
    fn process_churn(&mut self, k: usize) {
        {
            let Some(adm) = &mut self.admission else {
                return;
            };
            adm.begin_period();
            if adm.idle(k) {
                return;
            }
        }
        let mut adm = self.admission.take().expect("checked above");
        let pending = std::mem::take(&mut adm.pending);
        for mut p in pending {
            p.age += 1;
            self.settle_arrival(&mut adm, k, p);
        }
        while adm.events.get(adm.cursor).is_some_and(|e| e.period() <= k) {
            let ev = adm.events[adm.cursor].clone();
            adm.cursor += 1;
            match ev {
                ChurnEvent::Arrival { task, .. } => {
                    let plan_id = adm.plan_map.len();
                    adm.plan_map.push(None);
                    self.settle_arrival(
                        &mut adm,
                        k,
                        PendingArrival {
                            plan_id,
                            task,
                            age: 0,
                        },
                    );
                }
                ChurnEvent::Departure { task, .. } => self.depart(&mut adm, k, task),
                ChurnEvent::ModeChange { task, scale, .. } => {
                    if let Some(tid) = adm.resolve(task) {
                        if !self.plant.is_departed(tid) {
                            self.plant.set_task_mode(tid, scale);
                            adm.log.push(AdmissionEvent::ModeChanged {
                                period: k,
                                task: tid,
                            });
                            adm.summary.mode_changes += 1;
                            adm.period_delta.mode_changes += 1;
                        }
                    }
                }
            }
        }
        self.admission = Some(adm);
    }

    /// Decides one (possibly deferred) arrival: admit it, keep deferring,
    /// or reject once the deferral limit is exhausted.
    fn settle_arrival(&mut self, adm: &mut AdmissionController, k: usize, p: PendingArrival) {
        match self.try_admit(adm, &p.task) {
            Ok(tid) => {
                adm.plan_map[p.plan_id] = Some(tid);
                adm.log.push(AdmissionEvent::Admitted {
                    period: k,
                    task: tid,
                });
                adm.summary.admitted += 1;
                adm.period_delta.admitted += 1;
            }
            Err((_, deferrable)) if deferrable && p.age < adm.policy.defer_limit => {
                if p.age == 0 {
                    adm.log.push(AdmissionEvent::Deferred { period: k });
                }
                adm.summary.deferred += 1;
                adm.period_delta.deferred += 1;
                adm.pending.push(p);
            }
            Err((reason, _)) => {
                adm.log.push(AdmissionEvent::Rejected { period: k, reason });
                adm.summary.rejected += 1;
                adm.period_delta.rejected += 1;
            }
        }
    }

    /// Runs the admission test for one arrival and, on success, grows the
    /// controller's plant model, the simulator, and every per-task table
    /// the loop keeps.  The second member of the error is whether the
    /// rejection is transient (worth deferring).
    fn try_admit(
        &mut self,
        adm: &mut AdmissionController,
        task: &Task,
    ) -> Result<TaskId, (RejectReason, bool)> {
        // Safe mode freezes admissions until the primary law re-engages.
        if self.controller.mode() == ControlMode::Degraded {
            return Err((RejectReason::Degraded, true));
        }
        // Utilization-threshold admission test (the paper's §6.2 pointer):
        // project the arrival's estimated load at its starting rate on top
        // of the previous period's utilization sample.
        let n = self.set_points.len();
        adm.f_col.clear();
        adm.f_col.resize(n, 0.0);
        for s in task.subtasks() {
            adm.f_col[s.processor.0] += s.estimated_time;
        }
        let r0 = task.initial_rate();
        for p in 0..n {
            if self.u_scratch[p] + adm.f_col[p] * r0
                > adm.policy.admit_threshold * self.set_points[p]
            {
                return Err((RejectReason::OverBudget, true));
            }
        }
        // Grow the controller first — a task nobody can control must not
        // enter the plant.  Controllers without a per-task plant model
        // (OPEN, PID) refuse, which rejects the arrival for good.
        let t0 = Instant::now();
        let update = self
            .controller
            .membership_admit(&adm.f_col, task.rate_min(), task.rate_max(), r0)
            .map_err(|_| (RejectReason::ControllerRefused, false))?;
        adm.note_update(update, t0.elapsed().as_nanos() as u64);
        let tid = self
            .plant
            .admit_task(task.clone())
            .expect("churn plan validated at build time");
        self.ctrl_cols.push(tid);
        self.head_proc.push(task.subtasks()[0].processor.0);
        if let Some(grid) = &mut self.rate_grid {
            let lo = task.rate_min();
            let hi = task.rate_max();
            let levels = grid[0].len();
            grid.push(
                (0..levels)
                    .map(|i| lo * (hi / lo).powf(i as f64 / (levels - 1) as f64))
                    .collect(),
            );
        }
        let started = self.plant.rates_in_force()[tid.0];
        self.last.rates.push(started);
        self.act_cmd.push(started);
        // Commands already in the delay queue predate this task; they will
        // be padded with the in-force rate when they arrive.
        if let Some(net) = &mut self.net {
            net.add_task(task.subtasks()[0].processor.0);
        }
        Ok(tid)
    }

    /// Executes a departure: the plant drains the task's in-flight jobs,
    /// and the controller shrinks its plant model (migrating warm state)
    /// if it has one.
    fn depart(&mut self, adm: &mut AdmissionController, k: usize, plan_task: TaskId) {
        let Some(tid) = adm.resolve(plan_task) else {
            return; // a rejected arrival: nothing to depart
        };
        if self.plant.is_departed(tid) {
            return; // idempotent
        }
        self.plant.depart_task(tid);
        if let Some(col) = self.ctrl_cols.iter().position(|&t| t == tid) {
            adm.keep_scratch.clear();
            adm.keep_scratch
                .extend(self.ctrl_cols.iter().map(|&t| t != tid));
            let t0 = Instant::now();
            if let Ok(update) = self.controller.membership_retain(&adm.keep_scratch) {
                self.ctrl_cols.remove(col);
                adm.note_update(update, t0.elapsed().as_nanos() as u64);
            }
            // Controllers without a per-task plant model keep commanding
            // the departed slot; the plant simply ignores it.
        }
        adm.log.push(AdmissionEvent::Departed {
            period: k,
            task: tid,
        });
        adm.summary.departed += 1;
        adm.period_delta.departed += 1;
    }
}

/// Nearest grid value to `r` (grid is sorted ascending).
fn snap_to_grid(grid: &[f64], r: f64) -> f64 {
    grid.iter()
        .copied()
        .min_by(|a, b| (a - r).abs().total_cmp(&(b - r).abs()))
        .expect("grids have at least two levels")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use eucon_tasks::workloads;

    fn eucon_loop(etf: f64) -> ClosedLoop {
        ClosedLoop::builder(workloads::simple())
            .sim_config(SimConfig::constant_etf(etf))
            .controller(ControllerSpec::Eucon(MpcConfig::simple()))
            .build()
            .unwrap()
    }

    #[test]
    fn eucon_converges_on_simple_at_half_load() {
        // Figure 3(a): etf = 0.5 → both processors reach 0.828.
        let mut cl = eucon_loop(0.5);
        let result = cl.run(150);
        for p in 0..2 {
            let series = result.trace.utilization_series(p);
            let tail = metrics::window(&series, 100, 150);
            assert!(
                (tail.mean - 0.828).abs() < 0.03,
                "P{} mean {:.3} should approach 0.828",
                p + 1,
                tail.mean
            );
            assert!(
                tail.std_dev < 0.05,
                "P{} too oscillatory: {:.3}",
                p + 1,
                tail.std_dev
            );
        }
        assert_eq!(cl.control_errors(), 0);
    }

    #[test]
    fn eucon_diverges_at_etf_seven() {
        // Figure 3(b): etf = 7 exceeds the stability bound → no
        // convergence (oscillation / saturation).
        let mut cl = eucon_loop(7.0);
        let result = cl.run(150);
        let series = result.trace.utilization_series(0);
        let tail = metrics::window(&series, 100, 150);
        assert!(
            !metrics::acceptable(tail, 0.828),
            "etf = 7 must not satisfy the acceptability criterion (mean {:.3}, σ {:.3})",
            tail.mean,
            tail.std_dev
        );
    }

    #[test]
    fn open_loop_tracks_etf_linearly() {
        let mut cl = ClosedLoop::builder(workloads::medium())
            .sim_config(SimConfig::constant_etf(0.5))
            .controller(ControllerSpec::Open)
            .build()
            .unwrap();
        let result = cl.run(40);
        let series = result.trace.utilization_series(0);
        let tail = metrics::window(&series, 20, 40);
        // OPEN at etf 0.5 sits at half the set point.
        let b = result.set_points[0];
        assert!(
            (tail.mean - 0.5 * b).abs() < 0.05,
            "got {:.3}, want {:.3}",
            tail.mean,
            0.5 * b
        );
    }

    #[test]
    fn pid_baseline_runs() {
        let mut cl = ClosedLoop::builder(workloads::simple())
            .sim_config(SimConfig::constant_etf(0.5))
            .controller(ControllerSpec::Pid { kp: 0.5, ki: 0.05 })
            .build()
            .unwrap();
        let result = cl.run(60);
        assert_eq!(result.trace.len(), 60);
        assert_eq!(cl.controller_name(), "PID");
    }

    #[test]
    fn custom_set_points_are_tracked() {
        let mut cl = ClosedLoop::builder(workloads::simple())
            .sim_config(SimConfig::constant_etf(0.5))
            .controller(ControllerSpec::Eucon(MpcConfig::simple()))
            .set_points(Vector::from_slice(&[0.5, 0.6]))
            .build()
            .unwrap();
        let result = cl.run(120);
        let u1 = result.trace.utilization_series(0);
        let u2 = result.trace.utilization_series(1);
        assert!((metrics::window(&u1, 80, 120).mean - 0.5).abs() < 0.03);
        assert!((metrics::window(&u2, 80, 120).mean - 0.6).abs() < 0.03);
    }

    #[test]
    fn deadlines_met_once_converged() {
        let mut cl = eucon_loop(0.5);
        let result = cl.run(100);
        // Soft deadlines: the overwhelming majority must be met once the
        // utilization sits at the RMS bound.
        assert!(
            result.deadlines.miss_ratio() < 0.05,
            "miss ratio {:.4}",
            result.deadlines.miss_ratio()
        );
    }

    /// A controller that fails after a few periods, to exercise the
    /// loop's fault handling.
    struct FlakyController {
        inner: MpcController,
        fail_after: usize,
        calls: usize,
    }

    impl RateController for FlakyController {
        fn update(&mut self, u: &Vector) -> Result<(), ControlError> {
            self.calls += 1;
            if self.calls > self.fail_after {
                return Err(ControlError::DimensionMismatch("injected fault".into()));
            }
            self.inner.step(u).map(|_| ())
        }

        fn rates(&self) -> &Vector {
            self.inner.rates()
        }

        fn name(&self) -> &'static str {
            "flaky"
        }
    }

    #[test]
    fn controller_faults_keep_the_plant_running() {
        use eucon_tasks::rms_set_points;
        let set = workloads::simple();
        let b = rms_set_points(&set);
        let inner = MpcController::new(&set, b, MpcConfig::simple()).unwrap();
        let flaky: Box<dyn RateController> = Box::new(FlakyController {
            inner,
            fail_after: 30,
            calls: 0,
        });
        let mut cl = ClosedLoop::builder(workloads::simple())
            .sim_config(SimConfig::constant_etf(0.5))
            .controller(flaky)
            .build()
            .unwrap();
        let result = cl.run(80);
        assert_eq!(
            cl.control_errors(),
            50,
            "every post-fault period is counted"
        );
        assert_eq!(cl.controller_name(), "flaky");
        // The plant keeps running on the last good rates: utilization
        // stays pinned near wherever the loop had converged to.
        let tail = crate::metrics::window(&result.trace.utilization_series(0), 60, 80);
        assert!(
            tail.mean > 0.5,
            "plant still executing after controller death"
        );
        let last = result.trace.steps().last().unwrap();
        let at_30 = &result.trace.steps()[30];
        assert!(
            last.rates.approx_eq(&at_30.rates, 1e-12),
            "rates frozen at the fault"
        );
    }

    #[test]
    fn quantized_rates_snap_to_grid_and_still_regulate() {
        let mut cl = ClosedLoop::builder(workloads::simple())
            .sim_config(SimConfig::constant_etf(0.5))
            .controller(ControllerSpec::Eucon(MpcConfig::simple()))
            .quantized_rates(16)
            .build()
            .unwrap();
        let result = cl.run(150);
        // All actuated rates lie on the 16-level geometric grid.
        let set = workloads::simple();
        for step in result.trace.steps() {
            for (t, task) in set.tasks().iter().enumerate() {
                let lo = task.rate_min();
                let hi = task.rate_max();
                let on_grid = (0..16).any(|i| {
                    let g = lo * (hi / lo).powf(i as f64 / 15.0);
                    (step.rates[t] - g).abs() < 1e-12
                });
                assert!(on_grid, "rate {} of T{} off grid", step.rates[t], t + 1);
            }
        }
        // Regulation survives quantization, with some quantization noise.
        let s = crate::metrics::window(&result.trace.utilization_series(0), 100, 150);
        assert!((s.mean - 0.8284).abs() < 0.06, "mean {:.3}", s.mean);
    }

    #[test]
    fn coarse_quantization_increases_oscillation() {
        let sigma = |levels: Option<usize>| {
            let mut b = ClosedLoop::builder(workloads::simple())
                .sim_config(SimConfig::constant_etf(0.5))
                .controller(ControllerSpec::Eucon(MpcConfig::simple()));
            if let Some(l) = levels {
                b = b.quantized_rates(l);
            }
            let result = b.build().unwrap().run(150);
            crate::metrics::window(&result.trace.utilization_series(0), 100, 150).std_dev
        };
        let continuous = sigma(None);
        let coarse = sigma(Some(4));
        assert!(
            coarse > continuous,
            "4-level actuation must be noisier: {coarse:.4} vs {continuous:.4}"
        );
    }

    #[test]
    fn quantizer_needs_two_levels() {
        let err = ClosedLoop::builder(workloads::simple())
            .quantized_rates(1)
            .build()
            .unwrap_err();
        assert!(matches!(err, CoreError::Config(_)), "got {err:?}");
        assert!(err.to_string().contains("two rate levels"));
    }

    #[test]
    fn build_rejects_bad_sampling_periods() {
        for ts in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let err = ClosedLoop::builder(workloads::simple())
                .sampling_period(ts)
                .build()
                .unwrap_err();
            assert!(
                matches!(err, CoreError::Config(ref m) if m.contains("sampling period")),
                "ts = {ts}: got {err:?}"
            );
        }
    }

    #[test]
    fn build_rejects_bad_set_points() {
        // Non-finite entry.
        let err = ClosedLoop::builder(workloads::simple())
            .set_points(Vector::from_slice(&[0.8, f64::NAN]))
            .build()
            .unwrap_err();
        assert!(
            matches!(err, CoreError::Config(ref m) if m.contains("P2")),
            "got {err:?}"
        );
        // Non-positive entry.
        let err = ClosedLoop::builder(workloads::simple())
            .set_points(Vector::from_slice(&[0.0, 0.8]))
            .build()
            .unwrap_err();
        assert!(matches!(err, CoreError::Config(ref m) if m.contains("P1")));
        // Wrong arity.
        let err = ClosedLoop::builder(workloads::simple())
            .set_points(Vector::from_slice(&[0.8]))
            .build()
            .unwrap_err();
        assert!(matches!(err, CoreError::Config(ref m) if m.contains("per processor")));
    }

    #[test]
    fn telemetry_tracks_qp_and_engine_activity() {
        let mut cl = eucon_loop(0.5);
        let result = cl.run(60);
        let snap = &result.telemetry;
        assert_eq!(snap.counter("periods"), Some(60));
        assert_eq!(snap.counter("control_errors"), Some(0));
        // The engine counters flow through period deltas and must agree
        // with the cumulative totals the simulator reports.
        assert_eq!(snap.counter("engine_events"), Some(result.engine.events));
        // Converged: tracking error collapses and the transient's
        // constrained periods solve from a warm active set.
        let track = snap.histogram("tracking_error").unwrap();
        assert_eq!(track.count as usize, 60 * 2);
        assert_eq!(snap.histogram("qp_iterations_hist").unwrap().count, 60);
        assert!(snap.counter("qp_warm_hits").unwrap() > 0);
        assert_eq!(snap.counter("qp_cold_retries"), Some(0));
        // All four phase spans were timed every period.
        for h in [
            "span_simulate_ns",
            "span_sample_ns",
            "span_control_ns",
            "span_actuate_ns",
        ] {
            assert_eq!(snap.histogram(h).unwrap().count, 60, "{h}");
        }
        // The live registry view agrees with the snapshot.
        assert!(!cl.telemetry().columns().is_empty());
    }

    #[test]
    fn telemetry_counts_supervisor_transitions_under_crash() {
        let mut cl = ClosedLoop::builder(workloads::simple())
            .sim_config(SimConfig::constant_etf(0.5))
            .controller(ControllerSpec::SupervisedEucon {
                mpc: MpcConfig::simple(),
                supervisor: Default::default(),
            })
            .faults(FaultPlan::none().crash(1, 10, 20))
            .build()
            .unwrap();
        let result = cl.run(40);
        let snap = &result.telemetry;
        assert_eq!(snap.counter("crashed_periods"), Some(10));
        assert!(snap.counter("degraded_periods").unwrap() >= 10);
        assert!(
            snap.counter("mode_transitions").unwrap() >= 2,
            "a trip and a re-engagement"
        );
        assert_eq!(
            snap.counter("degraded_periods").unwrap() as usize,
            result.faults.degraded_periods
        );
        // The supervisor's cumulative watchdog counters surface as gauges.
        assert!(snap.gauge("rejected_samples").unwrap() >= 1.0);
        assert!(snap.gauge("supervisor_degradations").unwrap() >= 1.0);
        assert!(snap.gauge("supervisor_reengagements").unwrap() >= 1.0);
    }

    #[test]
    fn ring_sink_sees_per_period_rows() {
        use crate::telemetry::RingBufferSink;
        let mut cl = ClosedLoop::builder(workloads::simple())
            .sim_config(SimConfig::constant_etf(0.5))
            .controller(ControllerSpec::Eucon(MpcConfig::simple()))
            .telemetry_sink(RingBufferSink::new(4))
            .build()
            .unwrap();
        cl.run(10);
        // The builder-installed sink received the schema and rows; its
        // state is observable through the loop's registry totals.
        assert_eq!(
            cl.telemetry()
                .columns()
                .iter()
                .filter(|c| *c == "periods")
                .count(),
            1
        );
        let snap = cl.telemetry().snapshot();
        assert_eq!(snap.counter("periods"), Some(10));
        assert_eq!(snap.counter("sink_errors"), Some(0));
    }

    #[test]
    fn batched_telemetry_run_flushes_partial_batch_once() {
        use crate::telemetry::RingBufferSink;
        let mut cl = ClosedLoop::builder(workloads::simple())
            .sim_config(SimConfig::constant_etf(0.5))
            .telemetry_sink(RingBufferSink::new(64))
            .telemetry_batch(8)
            .build()
            .unwrap();
        // 10 periods with batch = 8: one full drain plus a 2-row partial
        // batch delivered by the end-of-run flush.
        let res = cl.run(10);
        assert_eq!(res.telemetry.counter("periods"), Some(10));
        assert_eq!(res.telemetry.counter("partial_flushes"), Some(1));
        assert_eq!(res.telemetry.counter("sink_errors"), Some(0));
    }

    #[test]
    fn run_metrics_view_matches_direct_metrics() {
        let mut cl = eucon_loop(0.5);
        let result = cl.run(150);
        let m = result.metrics();
        let direct = crate::metrics::window(&result.trace.utilization_series(0), 100, 150);
        assert_eq!(m.utilization(0, 100, 150), direct);
        assert!(m.acceptable(0, 100, 150));
        assert!(m.settling(0, 0.05, 0).is_some());
        assert_eq!(m.telemetry().counter("periods"), Some(150));
    }

    #[test]
    fn crash_is_annotated_and_counted() {
        let mut cl = ClosedLoop::builder(workloads::simple())
            .sim_config(SimConfig::constant_etf(0.5))
            .controller(ControllerSpec::SupervisedEucon {
                mpc: MpcConfig::simple(),
                supervisor: Default::default(),
            })
            .faults(FaultPlan::none().crash(1, 10, 20))
            .build()
            .unwrap();
        let result = cl.run(40);
        assert_eq!(result.faults.crashed_periods, 10);
        let steps = result.trace.steps();
        assert_eq!(steps[10].annotations.crashed, vec![1]);
        assert!(
            steps[10].seen()[1].is_nan(),
            "crashed monitor reports NaN to the controller"
        );
        assert!(
            steps[10].utilization[1].is_finite(),
            "the true trace stays physical"
        );
        assert!(steps[25].annotations.crashed.is_empty());
        assert_eq!(result.control_errors, 0, "supervisor absorbs the outage");
    }

    #[test]
    fn unsupervised_mpc_accumulates_errors_under_sensor_nan() {
        use eucon_sim::SensorFaultKind;
        let mut cl = ClosedLoop::builder(workloads::simple())
            .sim_config(SimConfig::constant_etf(0.5))
            .controller(ControllerSpec::Eucon(MpcConfig::simple()))
            .faults(FaultPlan::none().sensor(0, 20, 30, SensorFaultKind::NaN))
            .build()
            .unwrap();
        let result = cl.run(40);
        assert_eq!(
            result.control_errors, 10,
            "raw MPC rejects every NaN period"
        );
        assert!(result.trace.steps()[20].annotations.control_error);
        // Rejection (satellite a) protects the optimizer: once the sensor
        // heals the loop keeps regulating instead of being NaN-poisoned.
        let tail = crate::metrics::window(&result.trace.utilization_series(0), 35, 40);
        assert!(tail.mean.is_finite());
        assert!(result.trace.steps().last().unwrap().rates.is_finite());
    }

    #[test]
    fn actuation_loss_freezes_rates_on_dropped_lanes() {
        let mut cl = ClosedLoop::builder(workloads::simple())
            .sim_config(SimConfig::constant_etf(0.5))
            .controller(ControllerSpec::Eucon(MpcConfig::simple()))
            .faults(FaultPlan::none().actuation_loss(1.0 - 1e-9).seed(7))
            .build()
            .unwrap();
        let r0 = cl.simulator().rates();
        let result = cl.run(30);
        // Every command dropped: the plant never leaves its initial rates.
        assert!(result
            .trace
            .steps()
            .last()
            .unwrap()
            .rates
            .approx_eq(&r0, 0.0));
        assert!(result.faults.actuation_drops >= 30);
        assert!(!result.trace.steps()[0]
            .annotations
            .actuation_dropped
            .is_empty());
    }

    #[test]
    fn single_process_partition_freezes_the_lane() {
        let mut cl = ClosedLoop::builder(workloads::simple())
            .sim_config(SimConfig::constant_etf(0.5))
            .controller(ControllerSpec::Eucon(MpcConfig::simple()))
            .faults(FaultPlan::none().partition(1, 5, 10))
            .build()
            .unwrap();
        let result = cl.run(20);
        assert_eq!(result.faults.partitioned_periods, 5);
        let steps = result.trace.steps();
        assert_eq!(steps[5].annotations.partitioned, vec![1]);
        assert!(steps[4].annotations.partitioned.is_empty());
        // The controller keeps seeing the last pre-partition delivery on
        // the dead lane, while the live lane stays fresh.
        let held = steps[4].utilization[1];
        for (k, step) in steps.iter().enumerate().take(10).skip(5) {
            assert_eq!(step.seen()[1].to_bits(), held.to_bits(), "period {k}");
            assert_eq!(
                step.seen()[0].to_bits(),
                step.utilization[0].to_bits(),
                "lane 0 unaffected at period {k}"
            );
        }
        // Commands can't reach the partitioned processor either: every
        // task modulated there keeps its rate across the window.
        let set = workloads::simple();
        for (t, task) in set.tasks().iter().enumerate() {
            if task.subtasks()[0].processor.0 == 1 {
                for k in 5..10 {
                    assert_eq!(
                        steps[k].rates[t].to_bits(),
                        steps[4].rates[t].to_bits(),
                        "T{} must hold its rate at period {k}",
                        t + 1
                    );
                }
            }
        }
        // After the partition heals the loop re-engages and still
        // converges.
        assert!(steps[19].annotations.partitioned.is_empty());
        assert_eq!(result.control_errors, 0);
    }

    #[test]
    fn fault_free_runs_record_no_received_vector() {
        let mut cl = eucon_loop(0.5);
        let result = cl.run(20);
        assert!(result.trace.steps().iter().all(|s| s.received.is_none()));
        assert!(result.trace.steps().iter().all(|s| !s.annotations.any()));
        assert_eq!(result.faults, FaultSummary::default());
    }

    #[test]
    fn step_returns_latest() {
        let mut cl = eucon_loop(1.0);
        let s = cl.step();
        assert_eq!(s.time, 1000.0);
        assert_eq!(cl.periods_elapsed(), 1);
    }
}
