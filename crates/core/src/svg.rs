//! Minimal SVG line-chart rendering for the figure binaries.
//!
//! The paper's figures are time-series and sweep plots; this module turns
//! the recorded series into self-contained SVG files so the reproduction
//! produces actual figures, not only CSVs.  Deliberately tiny: axes,
//! grid, polyline series with a small palette, legend — nothing more.

/// One named series of a chart.
#[derive(Debug, Clone)]
pub struct Series<'a> {
    /// Legend label.
    pub label: &'a str,
    /// Sample values; x is the sample index.
    pub values: &'a [f64],
}

/// Chart configuration.
#[derive(Debug, Clone)]
pub struct ChartConfig<'a> {
    /// Chart title.
    pub title: &'a str,
    /// X-axis label.
    pub x_label: &'a str,
    /// Y-axis label.
    pub y_label: &'a str,
    /// Y-axis range; `None` auto-scales to the data (with 5% margin).
    pub y_range: Option<(f64, f64)>,
    /// Optional horizontal reference line (e.g. the utilization set point).
    pub reference: Option<f64>,
}

const WIDTH: f64 = 720.0;
const HEIGHT: f64 = 420.0;
const MARGIN_L: f64 = 60.0;
const MARGIN_R: f64 = 20.0;
const MARGIN_T: f64 = 40.0;
const MARGIN_B: f64 = 50.0;
const PALETTE: [&str; 6] = [
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b",
];

/// Renders a line chart of the given series as a standalone SVG document.
///
/// Returns an empty-plot SVG (axes only) when every series is empty.
///
/// # Example
///
/// ```
/// use eucon_core::svg::{line_chart, ChartConfig, Series};
///
/// let u = [0.4, 0.6, 0.8, 0.83, 0.828];
/// let svg = line_chart(
///     &[Series { label: "u1", values: &u }],
///     &ChartConfig {
///         title: "Figure 3(a)",
///         x_label: "sampling period",
///         y_label: "CPU utilization",
///         y_range: Some((0.0, 1.0)),
///         reference: Some(0.828),
///     },
/// );
/// assert!(svg.starts_with("<svg"));
/// assert!(svg.contains("polyline"));
/// ```
pub fn line_chart(series: &[Series<'_>], cfg: &ChartConfig<'_>) -> String {
    let n = series.iter().map(|s| s.values.len()).max().unwrap_or(0);
    let (y_min, y_max) = cfg.y_range.unwrap_or_else(|| {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for s in series {
            for &v in s.values {
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
        if let Some(r) = cfg.reference {
            lo = lo.min(r);
            hi = hi.max(r);
        }
        if !lo.is_finite() || !hi.is_finite() {
            (0.0, 1.0)
        } else {
            let pad = 0.05 * (hi - lo).max(1e-9);
            (lo - pad, hi + pad)
        }
    });

    let plot_w = WIDTH - MARGIN_L - MARGIN_R;
    let plot_h = HEIGHT - MARGIN_T - MARGIN_B;
    let x_of = |i: usize| MARGIN_L + plot_w * i as f64 / (n.max(2) - 1) as f64;
    let y_of = |v: f64| MARGIN_T + plot_h * (1.0 - (v - y_min) / (y_max - y_min).max(1e-12));

    let mut out = String::new();
    out.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{WIDTH}\" height=\"{HEIGHT}\" \
         viewBox=\"0 0 {WIDTH} {HEIGHT}\" font-family=\"sans-serif\" font-size=\"12\">\n"
    ));
    out.push_str("<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n");
    out.push_str(&format!(
        "<text x=\"{}\" y=\"20\" text-anchor=\"middle\" font-size=\"15\">{}</text>\n",
        WIDTH / 2.0,
        escape(cfg.title)
    ));

    // Gridlines and y ticks.
    for k in 0..=4 {
        let v = y_min + (y_max - y_min) * k as f64 / 4.0;
        let y = y_of(v);
        out.push_str(&format!(
            "<line x1=\"{MARGIN_L}\" y1=\"{y:.1}\" x2=\"{:.1}\" y2=\"{y:.1}\" \
             stroke=\"#dddddd\"/>\n",
            WIDTH - MARGIN_R
        ));
        out.push_str(&format!(
            "<text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"end\">{v:.2}</text>\n",
            MARGIN_L - 6.0,
            y + 4.0
        ));
    }
    // X ticks.
    for k in 0..=4 {
        let i = (n.saturating_sub(1)) * k / 4;
        let x = x_of(i);
        out.push_str(&format!(
            "<text x=\"{x:.1}\" y=\"{:.1}\" text-anchor=\"middle\">{i}</text>\n",
            HEIGHT - MARGIN_B + 18.0
        ));
    }
    // Axes labels.
    out.push_str(&format!(
        "<text x=\"{}\" y=\"{}\" text-anchor=\"middle\">{}</text>\n",
        WIDTH / 2.0,
        HEIGHT - 12.0,
        escape(cfg.x_label)
    ));
    out.push_str(&format!(
        "<text x=\"16\" y=\"{}\" text-anchor=\"middle\" transform=\"rotate(-90 16 {})\">{}</text>\n",
        HEIGHT / 2.0,
        HEIGHT / 2.0,
        escape(cfg.y_label)
    ));

    // Reference line.
    if let Some(r) = cfg.reference {
        let y = y_of(r);
        out.push_str(&format!(
            "<line x1=\"{MARGIN_L}\" y1=\"{y:.1}\" x2=\"{:.1}\" y2=\"{y:.1}\" \
             stroke=\"#444444\" stroke-dasharray=\"6 4\"/>\n",
            WIDTH - MARGIN_R
        ));
    }

    // Series.
    for (si, s) in series.iter().enumerate() {
        if s.values.is_empty() {
            continue;
        }
        let color = PALETTE[si % PALETTE.len()];
        let points: Vec<String> = s
            .values
            .iter()
            .enumerate()
            .map(|(i, &v)| format!("{:.1},{:.1}", x_of(i), y_of(v.clamp(y_min, y_max))))
            .collect();
        out.push_str(&format!(
            "<polyline fill=\"none\" stroke=\"{color}\" stroke-width=\"1.5\" points=\"{}\"/>\n",
            points.join(" ")
        ));
        // Legend entry.
        let lx = MARGIN_L + 10.0 + 90.0 * si as f64;
        let ly = MARGIN_T - 10.0;
        out.push_str(&format!(
            "<line x1=\"{lx}\" y1=\"{ly}\" x2=\"{}\" y2=\"{ly}\" stroke=\"{color}\" \
             stroke-width=\"2\"/>\n",
            lx + 18.0
        ));
        out.push_str(&format!(
            "<text x=\"{}\" y=\"{}\">{}</text>\n",
            lx + 22.0,
            ly + 4.0,
            escape(s.label)
        ));
    }

    out.push_str("</svg>\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ChartConfig<'static> {
        ChartConfig {
            title: "t",
            x_label: "x",
            y_label: "y",
            y_range: Some((0.0, 1.0)),
            reference: Some(0.8),
        }
    }

    #[test]
    fn renders_basic_structure() {
        let v = [0.1, 0.5, 0.9];
        let svg = line_chart(
            &[Series {
                label: "a",
                values: &v,
            }],
            &cfg(),
        );
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert_eq!(svg.matches("polyline").count(), 1);
        assert!(svg.contains("stroke-dasharray"), "reference line present");
        assert!(svg.contains(">a</text>"), "legend label present");
    }

    #[test]
    fn multiple_series_get_distinct_colors() {
        let v = [0.1, 0.2];
        let svg = line_chart(
            &[
                Series {
                    label: "a",
                    values: &v,
                },
                Series {
                    label: "b",
                    values: &v,
                },
            ],
            &cfg(),
        );
        assert!(svg.contains(PALETTE[0]));
        assert!(svg.contains(PALETTE[1]));
    }

    #[test]
    fn auto_scaling_covers_data_and_reference() {
        let v = [5.0, 10.0];
        let chart = ChartConfig {
            y_range: None,
            reference: Some(12.0),
            ..cfg()
        };
        let svg = line_chart(
            &[Series {
                label: "a",
                values: &v,
            }],
            &chart,
        );
        // Tick labels must reach past the reference value.
        assert!(
            svg.contains("12."),
            "auto range includes the reference: {svg}"
        );
    }

    #[test]
    fn empty_series_render_axes_only() {
        let svg = line_chart(&[], &cfg());
        assert!(svg.starts_with("<svg"));
        assert!(!svg.contains("polyline"));
    }

    #[test]
    fn titles_are_escaped() {
        let chart = ChartConfig {
            title: "a < b & c",
            ..cfg()
        };
        let svg = line_chart(&[], &chart);
        assert!(svg.contains("a &lt; b &amp; c"));
    }

    #[test]
    fn values_outside_range_are_clamped() {
        let v = [2.0, -1.0];
        let svg = line_chart(
            &[Series {
                label: "a",
                values: &v,
            }],
            &cfg(),
        );
        // Clamped values never place points outside the plot rectangle.
        for cap in svg.split("points=\"").skip(1) {
            let pts = cap.split('"').next().unwrap();
            for pair in pts.split_whitespace() {
                let y: f64 = pair.split(',').nth(1).unwrap().parse().unwrap();
                assert!((39.0..=371.0).contains(&y), "point off plot: {pair}");
            }
        }
    }
}
