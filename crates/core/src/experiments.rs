//! Declarative experiment runners for the paper's evaluation (§7).
//!
//! Each public function corresponds to a reusable experimental protocol;
//! the `eucon-bench` figure binaries and the integration tests are thin
//! wrappers over these.

use eucon_sim::{EtfProfile, ExecModel, SimConfig};
use eucon_tasks::TaskSet;
use rayon::prelude::*;

use crate::metrics::{self, SeriesStats};
use crate::{ClosedLoop, ControllerSpec, CoreError, RunResult};

/// One point of an execution-time-factor sweep (Figures 4 and 5).
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The execution-time factor of this run.
    pub etf: f64,
    /// Mean/deviation of each processor's utilization over the
    /// measurement window.
    pub stats: Vec<SeriesStats>,
    /// Whether each processor satisfied the paper's acceptability
    /// criterion against its set point.
    pub acceptable: Vec<bool>,
}

/// Protocol of a steady-execution-time run (Experiment I).
#[derive(Debug, Clone)]
pub struct SteadyRun {
    /// Workload to simulate.
    pub set: TaskSet,
    /// Controller under test.
    pub controller: ControllerSpec,
    /// Job-level execution-time randomness.
    pub exec_model: ExecModel,
    /// Number of sampling periods to run.
    pub periods: usize,
    /// Measurement window `[from, to)` in periods, excluding the
    /// transient (the paper uses `[100, 300]`).
    pub window: (usize, usize),
    /// RNG seed.
    pub seed: u64,
}

impl SteadyRun {
    /// The paper's Experiment I protocol on a workload: 300 periods,
    /// window `[100, 300)`.
    pub fn paper(set: TaskSet, controller: ControllerSpec, exec_model: ExecModel) -> Self {
        SteadyRun {
            set,
            controller,
            exec_model,
            periods: 300,
            window: (100, 300),
            seed: 1,
        }
    }

    /// Runs one constant-etf experiment and returns the full trace.
    ///
    /// # Errors
    ///
    /// Propagates loop-construction failures.
    pub fn run(&self, etf: f64) -> Result<RunResult, CoreError> {
        let cfg = SimConfig::constant_etf(etf)
            .exec_model(self.exec_model)
            .seed(self.seed);
        let mut cl = ClosedLoop::builder(self.set.clone())
            .sim_config(cfg)
            .controller(self.controller.clone())
            .build()?;
        Ok(cl.run(self.periods))
    }

    /// Sweeps the execution-time factor (Figures 4 / 5): one run per
    /// factor, reporting windowed statistics per processor.
    ///
    /// The runs are independent (each gets its own simulator and
    /// controller, seeded identically), so they are fanned out across
    /// threads; results come back in `etfs` order regardless of which
    /// run finishes first.  Thread count follows `RAYON_NUM_THREADS`.
    ///
    /// # Errors
    ///
    /// Propagates loop-construction failures.
    pub fn sweep(&self, etfs: &[f64]) -> Result<Vec<SweepPoint>, CoreError> {
        etfs.par_iter()
            .map(|&etf| {
                let result = self.run(etf)?;
                let (from, to) = self.window;
                let n = result.set_points.len();
                let stats: Vec<SeriesStats> = (0..n)
                    .map(|p| metrics::window(&result.trace.utilization_series(p), from, to))
                    .collect();
                let acceptable = stats
                    .iter()
                    .zip(result.set_points.iter())
                    .map(|(s, &b)| metrics::acceptable(*s, b))
                    .collect();
                Ok(SweepPoint {
                    etf,
                    stats,
                    acceptable,
                })
            })
            .collect()
    }
}

/// Protocol of the varying-execution-times stress test (Experiment II,
/// Figures 6–8): etf starts at 0.5, jumps to 0.9 at `100·Ts` (an 80%
/// increase in execution times) and drops to 0.33 at `200·Ts` (a 67%
/// decrease).
#[derive(Debug, Clone)]
pub struct VaryingRun {
    /// Workload to simulate.
    pub set: TaskSet,
    /// Controller under test.
    pub controller: ControllerSpec,
    /// Job-level execution-time randomness.
    pub exec_model: ExecModel,
    /// Sampling period (time units).
    pub ts: f64,
    /// Number of sampling periods (the paper runs 300).
    pub periods: usize,
    /// RNG seed.
    pub seed: u64,
}

impl VaryingRun {
    /// The paper's Experiment II protocol.
    pub fn paper(set: TaskSet, controller: ControllerSpec, exec_model: ExecModel) -> Self {
        VaryingRun {
            set,
            controller,
            exec_model,
            ts: crate::DEFAULT_SAMPLING_PERIOD,
            periods: 300,
            seed: 1,
        }
    }

    /// The paper's step profile for this run's sampling period.
    pub fn profile(&self) -> EtfProfile {
        EtfProfile::steps(&[(0.0, 0.5), (100.0 * self.ts, 0.9), (200.0 * self.ts, 0.33)])
    }

    /// Runs the experiment.
    ///
    /// # Errors
    ///
    /// Propagates loop-construction failures.
    pub fn run(&self) -> Result<RunResult, CoreError> {
        let cfg = SimConfig {
            exec_model: self.exec_model,
            etf: self.profile(),
            seed: self.seed,
            release_guard: Default::default(),
            processor_speeds: None,
        };
        let mut cl = ClosedLoop::builder(self.set.clone())
            .sim_config(cfg)
            .controller(self.controller.clone())
            .sampling_period(self.ts)
            .build()?;
        Ok(cl.run(self.periods))
    }

    /// Settling time (in periods) of a processor's utilization after the
    /// disturbance at period `event`: how long until it re-enters and
    /// holds within `±band` of the set point for 10 consecutive periods,
    /// measured up to the next event.
    pub fn settling_after(
        result: &RunResult,
        processor: usize,
        event: usize,
        until: usize,
        band: f64,
    ) -> Option<usize> {
        let series = result.trace.utilization_series(processor);
        let series = &series[..until.min(series.len())];
        let target = result.set_points[processor];
        metrics::settling_hold(series, target, band, event, 10).map(|k| k - event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eucon_control::MpcConfig;
    use eucon_tasks::workloads;

    fn quick_steady(controller: ControllerSpec) -> SteadyRun {
        SteadyRun {
            set: workloads::simple(),
            controller,
            exec_model: ExecModel::Constant,
            periods: 120,
            window: (80, 120),
            seed: 1,
        }
    }

    #[test]
    fn sweep_reports_per_processor_stats() {
        let run = quick_steady(ControllerSpec::Eucon(MpcConfig::simple()));
        let points = run.sweep(&[0.5, 1.0]).unwrap();
        assert_eq!(points.len(), 2);
        for p in &points {
            assert_eq!(p.stats.len(), 2);
            assert_eq!(p.acceptable.len(), 2);
            // EUCON at feasible etf tracks 0.828.
            assert!(
                (p.stats[0].mean - 0.828).abs() < 0.05,
                "etf {}: {:?}",
                p.etf,
                p.stats
            );
        }
    }

    #[test]
    fn paper_protocol_defaults() {
        let run = SteadyRun::paper(
            workloads::simple(),
            ControllerSpec::Open,
            ExecModel::Constant,
        );
        assert_eq!(run.periods, 300);
        assert_eq!(run.window, (100, 300));
    }

    #[test]
    fn varying_profile_matches_paper() {
        let run = VaryingRun::paper(
            workloads::simple(),
            ControllerSpec::Eucon(MpcConfig::simple()),
            ExecModel::Constant,
        );
        let p = run.profile();
        assert_eq!(p.value_at(50_000.0), 0.5);
        assert_eq!(p.value_at(150_000.0), 0.9);
        assert_eq!(p.value_at(250_000.0), 0.33);
    }

    #[test]
    fn varying_run_reconverges() {
        let mut run = VaryingRun::paper(
            workloads::simple(),
            ControllerSpec::Eucon(MpcConfig::simple()),
            ExecModel::Constant,
        );
        run.periods = 300;
        let result = run.run().unwrap();
        // After the step at 100, P1 re-settles within a few tens of
        // periods (paper: within 20 Ts).
        let settle = VaryingRun::settling_after(&result, 0, 105, 200, 0.05);
        assert!(settle.is_some(), "must re-settle after the 0.9 step");
        assert!(settle.unwrap() < 60, "settling too slow: {:?}", settle);
    }
}
