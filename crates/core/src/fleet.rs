//! Fleet runtime: thousands of independent closed loops on one
//! work-stealing thread pool.
//!
//! The paper's experiments run one loop at a time; capacity studies and
//! parameter sweeps want the opposite — *N* independent EUCON loops (one
//! per simulated system) packed onto the machine and measured as a fleet.
//! This module provides that:
//!
//! * [`FleetLoopSpec`] — a `Send + Clone` description of one loop (task
//!   set, simulator configuration, controller, fault plan).  Workers
//!   build the actual [`ClosedLoop`] locally, so the non-`Send` solver
//!   state (amortized factorizations behind a `RefCell`) never crosses a
//!   thread boundary.
//! * [`FleetRunner`] — runs every spec to completion on a work-stealing
//!   pool ([`rayon::par_map_init`]), stealing loop-sized work items so an
//!   expensive loop (faults, supervisor churn) does not stall the pool.
//! * [`FleetReport`] — aggregate throughput (periods/s, simulator
//!   events/s) plus one order-independent digest per loop.
//!
//! # Determinism
//!
//! Each loop is self-contained — its own simulator, RNG streams and
//! controller scratch — and specs are handed to workers whole, so the
//! per-loop trace digest is a pure function of the spec.  The digest
//! vector is therefore **bit-identical across thread counts** (pinned by
//! the `fleet_determinism` integration test), which makes fleet results
//! reproducible on any machine regardless of parallelism.
//!
//! # Steady-state cost
//!
//! Loops run with trace recording off and (optionally) batched telemetry
//! export, so the per-period step stays allocation-free: scratch lives in
//! per-loop arenas allocated at build time, and sink traffic is one drain
//! per [`FleetConfig::telemetry_batch`] periods instead of one per period.
//!
//! # Shared prepared models
//!
//! A homogeneous fleet would otherwise prepare the same controller model
//! — the `C` prediction matrix, constraint rows `G` and the Cholesky
//! factor of the Hessian — once per loop.  With
//! [`FleetConfig::share_models`] (the default), the runner builds **one
//! pristine prototype controller per distinct `(task set, controller,
//! set points)` group** on the calling thread and ships a clone to each
//! worker.  Clones share the immutable prepared core behind an `Arc`
//! ([`eucon_qp::PreparedQp`]), while warm-start state (active sets, LU
//! memos) stays per-loop, so a 10k-loop replicated fleet holds one copy
//! of the model instead of 10k.  Sharing is memory-only: the
//! `shared_prototypes_leave_digests_unchanged` test pins that digests are
//! bit-identical with sharing on and off.  Specs with churn plans or
//! admission policies always build their own controller (membership
//! edits rebuild the model per loop anyway).
//!
//! # Example
//!
//! ```
//! use eucon_core::{FleetConfig, FleetLoopSpec, FleetRunner};
//! use eucon_sim::SimConfig;
//! use eucon_tasks::workloads;
//!
//! # fn main() -> Result<(), eucon_core::CoreError> {
//! let spec = FleetLoopSpec::new(workloads::simple())
//!     .sim_config(SimConfig::constant_etf(0.5));
//! let fleet = FleetRunner::replicated(spec, 8, FleetConfig::new(25));
//! let report = fleet.run()?;
//! assert_eq!(report.loops, 8);
//! assert_eq!(report.total_periods, 8 * 25);
//! // Identical specs produce identical digests.
//! assert!(report.digests.iter().all(|&d| d == report.digests[0]));
//! # Ok(())
//! # }
//! ```

use std::sync::Arc;
use std::time::Instant;

use eucon_control::{DecentralizedController, MpcController, RateController, ShardedController};
use eucon_math::Vector;
use eucon_sim::{FaultPlan, SimConfig};
use eucon_tasks::{rms_set_points, TaskSet};

use crate::admission::{AdmissionPolicy, ChurnPlan, ChurnSummary};
use crate::plant::PlantFactory;
use crate::telemetry::RingBufferSink;
use crate::{ClosedLoop, ControllerSpec, CoreError};

/// A `Send + Clone` description of one closed loop in a fleet.
///
/// Everything here is plain configuration data; the loop itself (with its
/// non-`Send` solver caches and its plant) is built inside the worker
/// that runs it.
#[derive(Clone)]
pub struct FleetLoopSpec {
    set: TaskSet,
    sim: SimConfig,
    controller: ControllerSpec,
    set_points: Option<Vector>,
    faults: FaultPlan,
    churn: ChurnPlan,
    admission: Option<AdmissionPolicy>,
    plant: Option<Arc<dyn PlantFactory>>,
}

impl std::fmt::Debug for FleetLoopSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetLoopSpec")
            .field("controller", &self.controller)
            .field("plant", &self.plant.as_ref().map_or("sim", |p| p.label()))
            .field("faults", &self.faults)
            .finish_non_exhaustive()
    }
}

impl FleetLoopSpec {
    /// A spec for `set` with the defaults of [`ClosedLoop::builder`]:
    /// EUCON with SIMPLE's parameters, ideal lanes, no faults.
    pub fn new(set: TaskSet) -> Self {
        FleetLoopSpec {
            set,
            sim: SimConfig::default(),
            controller: ControllerSpec::Eucon(eucon_control::MpcConfig::simple()),
            set_points: None,
            faults: FaultPlan::none(),
            churn: ChurnPlan::none(),
            admission: None,
            plant: None,
        }
    }

    /// Chooses the plant backend every replica drives (default: the
    /// `eucon-sim` simulator).  The factory is shared by reference
    /// across workers; each builds its own plant.
    pub fn plant(mut self, factory: impl PlantFactory + 'static) -> Self {
        self.plant = Some(Arc::new(factory));
        self
    }

    /// Chooses the simulator configuration.
    pub fn sim_config(mut self, cfg: SimConfig) -> Self {
        self.sim = cfg;
        self
    }

    /// Chooses the controller.
    pub fn controller(mut self, spec: ControllerSpec) -> Self {
        self.controller = spec;
        self
    }

    /// Overrides the utilization set points (default: the RMS bounds).
    pub fn set_points(mut self, b: Vector) -> Self {
        self.set_points = Some(b);
        self
    }

    /// Installs a fault-injection plan.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Installs a runtime-membership (churn) plan.
    pub fn churn(mut self, plan: ChurnPlan) -> Self {
        self.churn = plan;
        self
    }

    /// Overrides the admission policy (a non-empty churn plan engages
    /// admission control with [`AdmissionPolicy::default`] already).
    pub fn admission(mut self, policy: AdmissionPolicy) -> Self {
        self.admission = Some(policy);
        self
    }
}

/// Fleet-wide execution parameters.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    periods: usize,
    threads: Option<usize>,
    telemetry_batch: usize,
    share_models: bool,
}

impl FleetConfig {
    /// Runs every loop for `periods` sampling periods on the default
    /// thread pool ([`rayon::current_num_threads`], i.e. the machine's
    /// parallelism unless `EUCON_THREADS` / `RAYON_NUM_THREADS` pins it),
    /// telemetry unbatched.
    pub fn new(periods: usize) -> Self {
        FleetConfig {
            periods,
            threads: None,
            telemetry_batch: 0,
            share_models: true,
        }
    }

    /// Pins the worker-pool size explicitly instead of reading the
    /// process environment — determinism tests sweep this over
    /// {1, 2, 8} without racing on `std::env::set_var`.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Batches each loop's telemetry export: a bounded ring sink is
    /// attached and drained once per `rows` periods (plus one final
    /// partial drain, counted in [`FleetReport::partial_flushes`])
    /// instead of being written once per period.  `0` (the default)
    /// leaves loops sink-free — the cheapest configuration.
    pub fn telemetry_batch(mut self, rows: usize) -> Self {
        self.telemetry_batch = rows;
        self
    }

    /// Toggles the shared prepared-model prototype cache (see the
    /// [module docs](self); default on).  Turning it off makes every
    /// worker prepare its own model — useful only for isolating the
    /// sharing machinery in benchmarks and tests.
    pub fn share_models(mut self, on: bool) -> Self {
        self.share_models = on;
        self
    }
}

/// Aggregate outcome of a fleet run.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Number of loops run.
    pub loops: usize,
    /// Total sampling periods executed across the fleet.
    pub total_periods: u64,
    /// Total simulator events processed across the fleet.
    pub engine_events: u64,
    /// Controller-error periods summed across the fleet (0 in a healthy
    /// fleet).
    pub control_errors: u64,
    /// Partial telemetry batches delivered at end-of-run flushes (0 when
    /// batching is off or every batch filled exactly).
    pub partial_flushes: u64,
    /// Runtime-membership activity summed across the fleet (all zero in a
    /// churn-free fleet).
    pub churn: ChurnSummary,
    /// Loops that were seeded from a shared prototype clone (0 when
    /// [`FleetConfig::share_models`] is off or no two specs matched).
    pub shared_models: usize,
    /// Wall-clock seconds for the whole fleet.
    pub elapsed_secs: f64,
    /// One FNV-1a digest per loop, in spec order, over every step's time,
    /// true utilizations and applied rates.  A pure function of the spec:
    /// independent of thread count and scheduling order.
    pub digests: Vec<u64>,
}

impl FleetReport {
    /// Aggregate control throughput: sampling periods per wall-clock
    /// second across the whole fleet.
    pub fn periods_per_sec(&self) -> f64 {
        self.total_periods as f64 / self.elapsed_secs
    }

    /// Aggregate simulator throughput in millions of events per second.
    pub fn mevents_per_sec(&self) -> f64 {
        self.engine_events as f64 / self.elapsed_secs / 1e6
    }
}

/// Runs a set of [`FleetLoopSpec`]s to completion on a work-stealing
/// thread pool.  See the [module docs](self) for the execution model.
#[derive(Debug, Clone)]
pub struct FleetRunner {
    specs: Vec<FleetLoopSpec>,
    config: FleetConfig,
}

impl FleetRunner {
    /// An empty fleet; add loops with [`FleetRunner::push`].
    pub fn new(config: FleetConfig) -> Self {
        FleetRunner {
            specs: Vec::new(),
            config,
        }
    }

    /// A homogeneous fleet: `n` copies of one spec (each still runs its
    /// own independent simulator and controller).
    pub fn replicated(spec: FleetLoopSpec, n: usize, config: FleetConfig) -> Self {
        FleetRunner {
            specs: vec![spec; n],
            config,
        }
    }

    /// Adds one loop to the fleet.
    pub fn push(&mut self, spec: FleetLoopSpec) -> &mut Self {
        self.specs.push(spec);
        self
    }

    /// Number of loops queued.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the fleet is empty.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Runs every loop to completion and aggregates the fleet report.
    ///
    /// Loops are the work items: workers steal whole loops from a shared
    /// queue, so heterogeneous fleets balance automatically.  Digests in
    /// the report follow spec order regardless of which worker ran what.
    ///
    /// # Errors
    ///
    /// Returns the first loop-construction failure ([`CoreError::Config`]
    /// or [`CoreError::Control`]); loops that already ran are discarded.
    pub fn run(&self) -> Result<FleetReport, CoreError> {
        let periods = self.config.periods;
        let batch = self.config.telemetry_batch;
        let t0 = Instant::now();
        let prototypes = if self.config.share_models {
            share_prototypes(&self.specs)?
        } else {
            vec![None; self.specs.len()]
        };
        let shared_models = prototypes.iter().filter(|p| p.is_some()).count();
        let items: Vec<(FleetLoopSpec, Option<Prototype>)> =
            self.specs.iter().cloned().zip(prototypes).collect();
        let outcomes: Result<Vec<LoopOutcome>, CoreError> = rayon::par_map_init(
            items,
            self.config.threads,
            || (),
            |(), (spec, proto)| run_one(&spec, proto, periods, batch),
        )
        .into_iter()
        .collect();
        let elapsed_secs = t0.elapsed().as_secs_f64();
        let outcomes = outcomes?;
        let mut report = FleetReport {
            loops: outcomes.len(),
            total_periods: 0,
            engine_events: 0,
            control_errors: 0,
            partial_flushes: 0,
            churn: ChurnSummary::default(),
            shared_models,
            elapsed_secs,
            digests: Vec::with_capacity(outcomes.len()),
        };
        for o in outcomes {
            report.total_periods += o.periods;
            report.engine_events += o.engine_events;
            report.control_errors += o.control_errors;
            report.partial_flushes += o.partial_flushes;
            report.churn.add(&o.churn);
            report.digests.push(o.digest);
        }
        Ok(report)
    }
}

/// A pristine, cloneable controller prepared once per homogeneous group.
/// Clones share the immutable prepared QP core (`Arc`-backed) and carry
/// their own warm-start scratch, so handing one to each loop costs a
/// reference-count bump instead of a Cholesky factorization.
#[derive(Debug, Clone)]
enum Prototype {
    Mpc(Box<MpcController>),
    Decentralized(DecentralizedController),
    Sharded(ShardedController),
}

impl Prototype {
    /// Whether the cache covers this spec: a prepared-MPC controller
    /// (centralized, decentralized or in-process sharded — not open
    /// loop, PID, networked shards or supervised stacks) with a static
    /// task set.  Specs with membership churn rebuild the model online,
    /// so they always prepare their own.
    fn eligible(spec: &FleetLoopSpec) -> bool {
        spec.churn.is_empty()
            && spec.admission.is_none()
            && matches!(
                spec.controller,
                ControllerSpec::Eucon(_)
                    | ControllerSpec::Decentralized(_)
                    | ControllerSpec::Sharded {
                        boundary: crate::BoundaryMode::InProcess,
                        ..
                    }
            )
    }

    /// Builds the prototype for a sharing-eligible spec (`None` when
    /// [`Prototype::eligible`] is false).
    fn build(spec: &FleetLoopSpec) -> Result<Option<Prototype>, CoreError> {
        if !Prototype::eligible(spec) {
            return Ok(None);
        }
        let b = spec
            .set_points
            .clone()
            .unwrap_or_else(|| rms_set_points(&spec.set));
        if b.len() != spec.set.num_processors() {
            // Arity errors surface through the loop builder with its
            // usual diagnostics; don't preempt them here.
            return Ok(None);
        }
        Ok(match &spec.controller {
            ControllerSpec::Eucon(cfg) => Some(Prototype::Mpc(Box::new(
                MpcController::new(&spec.set, b, cfg.clone()).map_err(CoreError::Control)?,
            ))),
            ControllerSpec::Decentralized(cfg) => Some(Prototype::Decentralized(
                DecentralizedController::new(&spec.set, b, cfg.clone())
                    .map_err(CoreError::Control)?,
            )),
            ControllerSpec::Sharded {
                mpc,
                shard_size,
                boundary: crate::BoundaryMode::InProcess,
            } => Some(Prototype::Sharded(
                ShardedController::with_shard_size(&spec.set, b, mpc.clone(), *shard_size)
                    .map_err(CoreError::Control)?,
            )),
            _ => None,
        })
    }

    fn into_controller(self) -> Box<dyn RateController> {
        match self {
            Prototype::Mpc(c) => c,
            Prototype::Decentralized(c) => Box::new(c),
            Prototype::Sharded(c) => Box::new(c),
        }
    }
}

/// Groups sharing-eligible specs by `(task set, controller, set points)`
/// and prepares one prototype per group with at least two members.
/// Returns one `Option<Prototype>` clone slot per spec, in spec order.
fn share_prototypes(specs: &[FleetLoopSpec]) -> Result<Vec<Option<Prototype>>, CoreError> {
    let mut out: Vec<Option<Prototype>> = vec![None; specs.len()];
    // (representative index, member indices); linear-scan grouping is
    // O(groups × specs) — fine even at 10k loops, where `groups` is tiny.
    let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
    for (i, spec) in specs.iter().enumerate() {
        if !Prototype::eligible(spec) {
            continue;
        }
        let key = (&spec.set, &spec.controller, &spec.set_points);
        match groups.iter_mut().find(|(rep, _)| {
            let r = &specs[*rep];
            (&r.set, &r.controller, &r.set_points) == key
        }) {
            Some((_, members)) => members.push(i),
            None => groups.push((i, vec![i])),
        }
    }
    for (rep, members) in groups {
        if members.len() < 2 {
            continue; // a singleton gains nothing from a main-thread build
        }
        if let Some(proto) = Prototype::build(&specs[rep])? {
            for i in members {
                out[i] = Some(proto.clone());
            }
        }
    }
    Ok(out)
}

/// What one worker hands back per loop — small plain data, so the result
/// collection stays cheap even at 10k+ loops.
struct LoopOutcome {
    digest: u64,
    periods: u64,
    engine_events: u64,
    control_errors: u64,
    partial_flushes: u64,
    churn: ChurnSummary,
}

/// Builds and runs one loop inside a worker thread.
fn run_one(
    spec: &FleetLoopSpec,
    proto: Option<Prototype>,
    periods: usize,
    batch: usize,
) -> Result<LoopOutcome, CoreError> {
    let mut builder = ClosedLoop::builder(spec.set.clone())
        .sim_config(spec.sim.clone())
        .faults(spec.faults.clone())
        .churn(spec.churn.clone())
        .record_trace(false);
    builder = match proto {
        // A prototype clone already carries the prepared model; the
        // builder consumes it through the prebuilt-controller factory.
        Some(p) => builder.controller(p.into_controller()),
        None => builder.controller(spec.controller.clone()),
    };
    if let Some(b) = &spec.set_points {
        builder = builder.set_points(b.clone());
    }
    if let Some(policy) = &spec.admission {
        builder = builder.admission(policy.clone());
    }
    if let Some(factory) = &spec.plant {
        builder = builder.plant(factory.clone());
    }
    if batch > 0 {
        builder = builder
            .telemetry_sink(RingBufferSink::new(batch))
            .telemetry_batch(batch);
    }
    let mut cl = builder.build()?;
    let mut digest = Fnv::new();
    for _ in 0..periods {
        let step = cl.step();
        digest.f64(step.time);
        for &x in step.utilization.iter() {
            digest.f64(x);
        }
        for &x in step.rates.iter() {
            digest.f64(x);
        }
    }
    // `run(0)` steps nothing further: it flushes the telemetry (delivering
    // any partial batch exactly once) and snapshots the counters.
    let result = cl.run(0);
    Ok(LoopOutcome {
        digest: digest.0,
        periods: periods as u64,
        engine_events: result.engine.events,
        control_errors: result.control_errors as u64,
        partial_flushes: result.telemetry.counter("partial_flushes").unwrap_or(0),
        churn: result.churn,
    })
}

/// FNV-1a 64 over bit patterns — the same digest the golden-trace suites
/// pin, applied per loop.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn f64(&mut self, x: f64) {
        for b in x.to_bits().to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eucon_control::MpcConfig;
    use eucon_tasks::workloads;

    fn mixed_specs() -> Vec<FleetLoopSpec> {
        let mut specs = Vec::new();
        for i in 0..12 {
            let spec = match i % 3 {
                0 => {
                    FleetLoopSpec::new(workloads::simple()).sim_config(SimConfig::constant_etf(0.5))
                }
                1 => FleetLoopSpec::new(workloads::medium())
                    .sim_config(SimConfig::constant_etf(0.9).seed(i as u64))
                    .controller(ControllerSpec::Eucon(MpcConfig::medium())),
                _ => FleetLoopSpec::new(workloads::simple())
                    .sim_config(SimConfig::constant_etf(0.5))
                    .controller(ControllerSpec::SupervisedEucon {
                        mpc: MpcConfig::simple(),
                        supervisor: Default::default(),
                    })
                    .faults(FaultPlan::none().crash(1, 5, 9).seed(7)),
            };
            specs.push(spec);
        }
        specs
    }

    #[test]
    fn digests_are_thread_count_invariant() {
        let run_at = |threads: usize| {
            let mut fleet = FleetRunner::new(FleetConfig::new(15).threads(threads));
            for spec in mixed_specs() {
                fleet.push(spec);
            }
            fleet.run().expect("fleet runs")
        };
        let one = run_at(1);
        let four = run_at(4);
        assert_eq!(one.digests, four.digests);
        assert_eq!(one.total_periods, 12 * 15);
        assert_eq!(one.control_errors, four.control_errors);
        assert_eq!(one.engine_events, four.engine_events);
    }

    #[test]
    fn fleet_loop_matches_standalone_loop() {
        // A fleet member and a hand-built loop over the same spec observe
        // the same trace, bit for bit.
        let report = FleetRunner::replicated(
            FleetLoopSpec::new(workloads::simple()).sim_config(SimConfig::constant_etf(0.5)),
            1,
            FleetConfig::new(20).threads(1),
        )
        .run()
        .expect("fleet runs");
        let mut cl = ClosedLoop::builder(workloads::simple())
            .sim_config(SimConfig::constant_etf(0.5))
            .record_trace(false)
            .build()
            .expect("loop");
        let mut digest = Fnv::new();
        for _ in 0..20 {
            let s = cl.step();
            digest.f64(s.time);
            for &x in s.utilization.iter() {
                digest.f64(x);
            }
            for &x in s.rates.iter() {
                digest.f64(x);
            }
        }
        assert_eq!(report.digests, vec![digest.0]);
    }

    #[test]
    fn batched_fleet_counts_partial_flushes() {
        // 25 periods with batch = 10: two full drains + one 5-row partial
        // per loop.
        let report = FleetRunner::replicated(
            FleetLoopSpec::new(workloads::simple()).sim_config(SimConfig::constant_etf(0.5)),
            3,
            FleetConfig::new(25).threads(2).telemetry_batch(10),
        )
        .run()
        .expect("fleet runs");
        assert_eq!(report.partial_flushes, 3);
        assert_eq!(report.control_errors, 0);
        // Batching must not perturb the loops themselves.
        let unbatched = FleetRunner::replicated(
            FleetLoopSpec::new(workloads::simple()).sim_config(SimConfig::constant_etf(0.5)),
            3,
            FleetConfig::new(25).threads(2),
        )
        .run()
        .expect("fleet runs");
        assert_eq!(report.digests, unbatched.digests);
        assert_eq!(unbatched.partial_flushes, 0);
    }

    #[test]
    fn shared_prototypes_leave_digests_unchanged() {
        // The ISSUE's digest-equality gate: the prototype cache is a
        // memory optimization, so every per-loop trace digest must be
        // bit-identical with sharing on and off — across centralized,
        // decentralized and sharded controllers at once.
        let mut specs = Vec::new();
        for _ in 0..3 {
            specs.push(
                FleetLoopSpec::new(workloads::medium())
                    .sim_config(SimConfig::constant_etf(0.9).seed(11))
                    .controller(ControllerSpec::Eucon(MpcConfig::medium())),
            );
            specs.push(
                FleetLoopSpec::new(workloads::medium())
                    .sim_config(SimConfig::constant_etf(0.9).seed(12))
                    .controller(ControllerSpec::Decentralized(MpcConfig::medium())),
            );
            specs.push(
                FleetLoopSpec::new(workloads::medium())
                    .sim_config(SimConfig::constant_etf(0.9).seed(13))
                    .controller(ControllerSpec::Sharded {
                        mpc: MpcConfig::medium(),
                        shard_size: 2,
                        boundary: crate::BoundaryMode::InProcess,
                    }),
            );
        }
        // One ineligible spec rides along to prove mixed fleets work.
        specs.push(
            FleetLoopSpec::new(workloads::simple())
                .sim_config(SimConfig::constant_etf(0.5))
                .controller(ControllerSpec::Pid { kp: 1.0, ki: 0.1 }),
        );
        let run_with = |share: bool| {
            let mut fleet = FleetRunner::new(FleetConfig::new(20).threads(2).share_models(share));
            for s in &specs {
                fleet.push(s.clone());
            }
            fleet.run().expect("fleet runs")
        };
        let shared = run_with(true);
        let private = run_with(false);
        assert_eq!(shared.digests, private.digests);
        // Three groups of three share; the PID singleton does not.
        assert_eq!(shared.shared_models, 9);
        assert_eq!(private.shared_models, 0);
    }

    #[test]
    fn singletons_and_churned_specs_build_their_own_models() {
        let eucon = FleetLoopSpec::new(workloads::simple())
            .sim_config(SimConfig::constant_etf(0.5))
            .controller(ControllerSpec::Eucon(MpcConfig::simple()));
        // Two identical churn-carrying specs: grouped, but never shared.
        let churned = eucon
            .clone()
            .churn(ChurnPlan::none().departure(5, eucon_tasks::TaskId(0)));
        let mut fleet = FleetRunner::new(FleetConfig::new(10).threads(1));
        fleet.push(eucon); // singleton group
        fleet.push(churned.clone());
        fleet.push(churned);
        let report = fleet.run().expect("fleet runs");
        assert_eq!(report.shared_models, 0);
    }

    #[test]
    fn empty_fleet_reports_zeros() {
        let report = FleetRunner::new(FleetConfig::new(10)).run().expect("runs");
        assert_eq!(report.loops, 0);
        assert_eq!(report.total_periods, 0);
        assert!(report.digests.is_empty());
    }

    #[test]
    fn bad_spec_surfaces_the_config_error() {
        let spec = FleetLoopSpec::new(workloads::simple()).set_points(Vector::from_slice(&[0.8]));
        let err = FleetRunner::replicated(spec, 2, FleetConfig::new(5).threads(2))
            .run()
            .unwrap_err();
        assert!(matches!(err, CoreError::Config(_)), "got {err:?}");
    }
}
