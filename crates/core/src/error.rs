//! Error type for the orchestration crate.

use std::error::Error;
use std::fmt;

use eucon_control::ControlError;
use eucon_net::TransportError;
use eucon_sim::SimError;
use eucon_tasks::TaskError;

/// Errors produced while assembling or running closed-loop experiments.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// Controller construction or update failed.
    Control(ControlError),
    /// The workload definition was invalid.
    Task(TaskError),
    /// A builder input failed validation (non-finite set point,
    /// non-positive sampling period, degenerate rate quantization, ...).
    Config(String),
    /// Setting up or operating the feedback-lane transport failed
    /// (binding the loopback sockets, a torn-down channel peer, ...).
    Transport(TransportError),
    /// A fault plan (or other simulator-side configuration) failed
    /// validation — out-of-range processor, empty/inverted window,
    /// ambiguous overlap, out-of-range probability.
    Sim(SimError),
    /// A telemetry recording fed to the replay plant failed to decode
    /// against the supported schema version, or did not match the
    /// workload it was asked to drive.
    Replay(crate::replay::ReplayError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Control(e) => write!(f, "controller failure: {e}"),
            CoreError::Task(e) => write!(f, "invalid workload: {e}"),
            CoreError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            CoreError::Transport(e) => write!(f, "feedback-lane transport failure: {e}"),
            CoreError::Sim(e) => write!(f, "fault-plan validation failed: {e}"),
            CoreError::Replay(e) => write!(f, "invalid replay recording: {e}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Control(e) => Some(e),
            CoreError::Task(e) => Some(e),
            CoreError::Config(_) => None,
            CoreError::Transport(e) => Some(e),
            CoreError::Sim(e) => Some(e),
            CoreError::Replay(e) => Some(e),
        }
    }
}

#[doc(hidden)]
impl From<SimError> for CoreError {
    fn from(e: SimError) -> Self {
        CoreError::Sim(e)
    }
}

#[doc(hidden)]
impl From<TransportError> for CoreError {
    fn from(e: TransportError) -> Self {
        CoreError::Transport(e)
    }
}

#[doc(hidden)]
impl From<ControlError> for CoreError {
    fn from(e: ControlError) -> Self {
        CoreError::Control(e)
    }
}

#[doc(hidden)]
impl From<TaskError> for CoreError {
    fn from(e: TaskError) -> Self {
        CoreError::Task(e)
    }
}

#[doc(hidden)]
impl From<crate::replay::ReplayError> for CoreError {
    fn from(e: crate::replay::ReplayError) -> Self {
        CoreError::Replay(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CoreError::Task(TaskError::EmptyTaskSet);
        assert!(e.to_string().contains("no tasks"));
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn config_errors_carry_their_message() {
        let e = CoreError::Config("sampling period must be positive".into());
        assert!(e.to_string().contains("invalid configuration"));
        assert!(e.to_string().contains("sampling period"));
        assert!(Error::source(&e).is_none());
    }

    #[test]
    fn sim_errors_wrap_with_source() {
        let e = CoreError::Sim(SimError::InvalidProbability {
            what: "actuation loss",
            value: 2.0,
        });
        assert!(e.to_string().contains("fault-plan validation failed"));
        assert!(Error::source(&e).is_some());
    }
}
