//! Trace-replay plant: recorded per-period telemetry played back
//! through the closed loop.
//!
//! PR 4's telemetry sinks already serialize every sampling period as one
//! flat JSONL object (`results/*.jsonl`): `period`, `time`, and the
//! metric registry's columns — including the per-processor utilizations
//! `u_p1..u_pN`.  [`ReplayTrace`] decodes that stream (schema v1) once,
//! and [`ReplayPlant`] feeds it back to the loop one row per period:
//! the controller sees exactly the utilizations the recorded system
//! produced, which makes recorded incidents reproducible regression and
//! bench input without the simulator in the loop.
//!
//! Round-trip fidelity: the JSONL writer formats `f64` values with
//! Rust's shortest-roundtrip `Display`, so decoding them back with
//! `str::parse::<f64>` is bit-exact.  Recording a [`crate::ClosedLoop`]
//! run to JSONL and replaying it therefore reproduces the utilization
//! sequence — and, the controller being deterministic, the rate
//! sequence — f64-bit-identically (pinned by the `replay_roundtrip`
//! suite).
//!
//! Decode failures carry the schema version and the offending line as a
//! typed [`ReplayError`], surfaced as [`CoreError::Replay`] (facade
//! kind: `ErrorKind::Workload` — the recording *is* the workload here).

use std::error::Error;
use std::fmt;
use std::path::Path;
use std::sync::Arc;

use eucon_math::Vector;
use eucon_sim::SimConfig;
use eucon_tasks::TaskSet;

use crate::plant::{Plant, PlantFactory};
use crate::CoreError;

/// The JSONL telemetry schema this decoder understands: flat one-object
/// lines with `period`, `time` and `u_p<i>` utilization columns, as
/// written by `eucon_telemetry::JsonlSink` since PR 4.
pub const REPLAY_SCHEMA_VERSION: u32 = 1;

/// A typed telemetry-decode failure: which line of the recording broke,
/// against which schema version, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayError {
    /// 1-based line number in the recording (0 for file-level failures
    /// such as an unreadable path or an empty recording).
    pub line: usize,
    /// The schema version the decoder expected.
    pub schema: u32,
    /// Human-readable diagnosis.
    pub reason: String,
}

impl ReplayError {
    fn new(line: usize, reason: impl Into<String>) -> Self {
        ReplayError {
            line,
            schema: REPLAY_SCHEMA_VERSION,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "telemetry schema v{}: {}", self.schema, self.reason)
        } else {
            write!(
                f,
                "telemetry schema v{}, line {}: {}",
                self.schema, self.line, self.reason
            )
        }
    }
}

impl Error for ReplayError {}

/// A decoded telemetry recording, ready to replay.
///
/// Cheap to clone (rows live behind an [`Arc`]) and `Send + Sync`, so
/// one loaded trace can fan out across a whole fleet.  Use it directly
/// as the `plant(...)` option of any builder:
///
/// ```no_run
/// use eucon_core::{LoopBuilder, ReplayTrace};
/// use eucon_tasks::workloads;
///
/// # fn main() -> Result<(), eucon_core::CoreError> {
/// let trace = ReplayTrace::load("results/telemetry_medium.jsonl")?;
/// let mut cl = LoopBuilder::new(workloads::medium())
///     .plant(trace)
///     .local()?;
/// cl.run(60);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ReplayTrace {
    /// One utilization vector (length `num_processors`) per recorded
    /// period, in period order.
    rows: Arc<Vec<Vec<f64>>>,
    num_processors: usize,
}

impl ReplayTrace {
    /// Loads and decodes a JSONL telemetry recording from disk.
    ///
    /// # Errors
    ///
    /// [`CoreError::Replay`] when the file cannot be read or any line
    /// fails to decode against schema v[`REPLAY_SCHEMA_VERSION`].
    pub fn load(path: impl AsRef<Path>) -> Result<Self, CoreError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| ReplayError::new(0, format!("cannot read {}: {e}", path.display())))?;
        Ok(ReplayTrace::parse(&text)?)
    }

    /// Decodes a JSONL telemetry recording from memory.
    ///
    /// # Errors
    ///
    /// [`ReplayError`] for an empty recording, a line that is not a
    /// complete flat JSON object, missing or non-contiguous `u_p*`
    /// columns, or a row whose processor count differs from the first.
    pub fn parse(text: &str) -> Result<Self, ReplayError> {
        let mut rows = Vec::new();
        let mut num_processors = 0usize;
        for (i, line) in text.lines().enumerate() {
            let lineno = i + 1;
            if line.trim().is_empty() {
                continue;
            }
            let row = decode_row(line, lineno)?;
            if rows.is_empty() {
                num_processors = row.len();
            } else if row.len() != num_processors {
                return Err(ReplayError::new(
                    lineno,
                    format!(
                        "row has {} utilization columns, recording started with {}",
                        row.len(),
                        num_processors
                    ),
                ));
            }
            rows.push(row);
        }
        if rows.is_empty() {
            return Err(ReplayError::new(0, "recording holds no telemetry rows"));
        }
        Ok(ReplayTrace {
            rows: Arc::new(rows),
            num_processors,
        })
    }

    /// Number of recorded periods.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the recording is empty (never true for a decoded trace).
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of processors (utilization columns) in the recording.
    pub fn num_processors(&self) -> usize {
        self.num_processors
    }
}

impl PlantFactory for ReplayTrace {
    fn build_plant(&self, set: &TaskSet, _sim: &SimConfig) -> Result<Box<dyn Plant>, CoreError> {
        if self.num_processors != set.num_processors() {
            return Err(ReplayError::new(
                0,
                format!(
                    "recording drives {} processors, workload has {}",
                    self.num_processors,
                    set.num_processors()
                ),
            )
            .into());
        }
        Ok(Box::new(ReplayPlant::new(self.clone(), set)))
    }

    fn label(&self) -> &'static str {
        "replay"
    }
}

/// A [`Plant`] that replays a [`ReplayTrace`]: each period's sample is
/// the recorded utilization row; rate commands are clamped into each
/// task's range and held (they steer nothing, but the loop's trace
/// records them exactly as it would against a live plant).  A loop run
/// past the end of the recording holds the final row.
#[derive(Debug)]
pub struct ReplayPlant {
    trace: ReplayTrace,
    /// Rows consumed so far (the next sample reads row `cursor - 1`).
    cursor: usize,
    /// Rates in force at the (virtual) modulators.
    rates: Vec<f64>,
    /// Per-task `(Rmin, Rmax)` — commands clamp exactly like the
    /// simulator's modulators, keeping round-trip traces bit-identical.
    bounds: Vec<(f64, f64)>,
}

impl ReplayPlant {
    /// Builds a replay plant for `set` (rates start at the tasks'
    /// initial rates, as in the simulator).
    pub fn new(trace: ReplayTrace, set: &TaskSet) -> Self {
        ReplayPlant {
            trace,
            cursor: 0,
            rates: set.tasks().iter().map(|t| t.initial_rate()).collect(),
            bounds: set
                .tasks()
                .iter()
                .map(|t| (t.rate_min(), t.rate_max()))
                .collect(),
        }
    }

    /// Periods of recording left to replay.
    pub fn remaining(&self) -> usize {
        self.trace.len().saturating_sub(self.cursor)
    }
}

impl Plant for ReplayPlant {
    fn name(&self) -> &'static str {
        "replay"
    }

    fn num_processors(&self) -> usize {
        self.trace.num_processors
    }

    fn num_tasks(&self) -> usize {
        self.rates.len()
    }

    fn advance_to(&mut self, _t_end: f64) {
        if self.cursor < self.trace.len() {
            self.cursor += 1;
        }
    }

    fn sample_into(&mut self, out: &mut Vector) {
        let row = self.cursor.saturating_sub(1).min(self.trace.len() - 1);
        out.copy_from_slice(&self.trace.rows[row]);
    }

    fn apply_rates(&mut self, rates: &Vector) {
        for (t, &r) in rates.iter().enumerate() {
            let (lo, hi) = self.bounds[t];
            self.rates[t] = r.clamp(lo, hi);
        }
    }

    fn rates_in_force(&self) -> &[f64] {
        &self.rates
    }
}

/// Decodes one flat JSONL object into its `u_p1..u_pN` utilization row.
fn decode_row(line: &str, lineno: usize) -> Result<Vec<f64>, ReplayError> {
    let bad = |reason: String| ReplayError::new(lineno, reason);
    let body = line.trim();
    let body = body
        .strip_prefix('{')
        .and_then(|b| b.strip_suffix('}'))
        .ok_or_else(|| bad("not a JSON object (truncated line?)".into()))?;
    // Indexed by processor (0-based); `u_p1` → slot 0.
    let mut slots: Vec<Option<f64>> = Vec::new();
    for (key, value) in FlatPairs::new(body, lineno) {
        let (key, value) = (key, value?);
        let Some(idx) = key
            .strip_prefix("u_p")
            .and_then(|s| s.parse::<usize>().ok())
        else {
            continue;
        };
        if idx == 0 {
            return Err(bad("utilization columns are 1-based (u_p1..)".into()));
        }
        if slots.len() < idx {
            slots.resize(idx, None);
        }
        let u = match value {
            // A crashed monitor's NaN was serialized as null; replay it
            // as the NaN the controller originally saw.
            "null" => f64::NAN,
            num => num
                .parse::<f64>()
                .map_err(|_| bad(format!("column {key} holds non-numeric value {num:?}")))?,
        };
        slots[idx - 1] = Some(u);
    }
    if slots.is_empty() {
        return Err(bad("no u_p* utilization columns in row".into()));
    }
    slots
        .iter()
        .enumerate()
        .map(|(p, s)| s.ok_or_else(|| bad(format!("utilization column u_p{} missing", p + 1))))
        .collect()
}

/// Iterator over the `"key":value` pairs of one flat JSON object body
/// (string keys; number / null / string values; no nesting — the
/// telemetry schema is flat by construction).
struct FlatPairs<'a> {
    rest: &'a str,
    lineno: usize,
    failed: bool,
}

impl<'a> FlatPairs<'a> {
    fn new(body: &'a str, lineno: usize) -> Self {
        FlatPairs {
            rest: body.trim(),
            lineno,
            failed: false,
        }
    }

    fn fail(&mut self, reason: String) -> Option<(&'a str, Result<&'a str, ReplayError>)> {
        self.failed = true;
        Some(("", Err(ReplayError::new(self.lineno, reason))))
    }
}

impl<'a> Iterator for FlatPairs<'a> {
    /// The raw key (unescaped — telemetry keys never need escapes) and
    /// the raw value token, or the decode error that ended the scan.
    type Item = (&'a str, Result<&'a str, ReplayError>);

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed || self.rest.is_empty() {
            return None;
        }
        // "key"
        let Some(after_quote) = self.rest.strip_prefix('"') else {
            return self.fail(format!("expected a quoted key at {:?}", clip(self.rest)));
        };
        let Some(key_end) = scan_string(after_quote) else {
            return self.fail("unterminated key (truncated line?)".into());
        };
        let key = &after_quote[..key_end];
        let rest = &after_quote[key_end + 1..];
        // :
        let Some(rest) = rest.trim_start().strip_prefix(':') else {
            return self.fail(format!("expected ':' after key {key:?}"));
        };
        let rest = rest.trim_start();
        // value: a string, or a bare token up to the next ',' / end.
        let (value, rest) = if let Some(after) = rest.strip_prefix('"') {
            let Some(end) = scan_string(after) else {
                return self.fail(format!("unterminated value for key {key:?}"));
            };
            (&rest[..end + 2], &after[end + 1..])
        } else {
            let end = rest.find(',').unwrap_or(rest.len());
            (rest[..end].trim_end(), &rest[end..])
        };
        if value.is_empty() {
            return self.fail(format!("missing value for key {key:?}"));
        }
        // , or end
        let rest = rest.trim_start();
        self.rest = match rest.strip_prefix(',') {
            Some(r) => {
                let r = r.trim_start();
                if r.is_empty() {
                    return self.fail("trailing comma (truncated line?)".into());
                }
                r
            }
            None if rest.is_empty() => rest,
            None => return self.fail(format!("expected ',' after value of {key:?}")),
        };
        Some((key, Ok(value)))
    }
}

/// Index of the closing quote of a JSON string (input starts just after
/// the opening quote), honouring backslash escapes.
fn scan_string(s: &str) -> Option<usize> {
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return Some(i),
            _ => i += 1,
        }
    }
    None
}

/// First few characters of a malformed remainder, for diagnostics.
fn clip(s: &str) -> &str {
    let end = s.char_indices().nth(12).map(|(i, _)| i).unwrap_or(s.len());
    &s[..end]
}

#[cfg(test)]
mod tests {
    use super::*;
    use eucon_tasks::workloads;

    const TWO_PROC: &str = concat!(
        "{\"period\":0,\"time\":1000,\"u_p1\":0.5,\"u_p2\":0.25,\"qp_iterations\":2}\n",
        "{\"period\":1,\"time\":2000,\"u_p1\":0.75,\"u_p2\":null}\n",
    );

    #[test]
    fn parses_utilization_columns_in_order() {
        let trace = ReplayTrace::parse(TWO_PROC).unwrap();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.num_processors(), 2);
        assert_eq!(trace.rows[0], vec![0.5, 0.25]);
        assert_eq!(trace.rows[1][0], 0.75);
        assert!(trace.rows[1][1].is_nan(), "null replays as NaN");
    }

    #[test]
    fn replay_plant_feeds_rows_and_holds_the_last() {
        let trace = ReplayTrace::parse(TWO_PROC).unwrap();
        let set = workloads::simple();
        let mut plant = ReplayPlant::new(trace.clone(), &set);
        assert_eq!(plant.name(), "replay");
        assert_eq!(plant.remaining(), 2);
        let mut u = Vector::zeros(2);
        plant.advance_to(1000.0);
        plant.sample_into(&mut u);
        assert_eq!(u.as_slice()[0], 0.5);
        plant.advance_to(2000.0);
        plant.sample_into(&mut u);
        assert_eq!(u.as_slice()[0], 0.75);
        // Past the end: the final row holds.
        plant.advance_to(3000.0);
        plant.sample_into(&mut u);
        assert_eq!(u.as_slice()[0], 0.75);
        assert_eq!(plant.remaining(), 0);
    }

    #[test]
    fn rate_commands_clamp_like_the_simulator() {
        let trace = ReplayTrace::parse(TWO_PROC).unwrap();
        let set = workloads::simple();
        let mut plant = ReplayPlant::new(trace, &set);
        let huge = Vector::filled(set.num_tasks(), 1e9);
        plant.apply_rates(&huge);
        for (t, task) in set.tasks().iter().enumerate() {
            assert_eq!(plant.rates_in_force()[t], task.rate_max());
        }
    }

    #[test]
    fn truncated_line_is_a_typed_schema_error() {
        let err = ReplayTrace::parse(
            "{\"period\":0,\"u_p1\":0.5,\"u_p2\":0.25}\n{\"period\":1,\"u_p1\":0.",
        )
        .unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.schema, REPLAY_SCHEMA_VERSION);
        assert!(err.to_string().contains("schema v1"), "{err}");
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn corrupt_value_names_the_column() {
        let err = ReplayTrace::parse("{\"u_p1\":0.5,\"u_p2\":bogus}").unwrap_err();
        assert!(err.reason.contains("u_p2"), "{err}");
    }

    #[test]
    fn missing_and_inconsistent_columns_are_rejected() {
        let err = ReplayTrace::parse("{\"period\":0,\"time\":0}").unwrap_err();
        assert!(err.reason.contains("no u_p*"), "{err}");
        // A gap in the 1..=N contiguous column range.
        let err = ReplayTrace::parse("{\"u_p1\":0.5,\"u_p3\":0.5}").unwrap_err();
        assert!(err.reason.contains("u_p2 missing"), "{err}");
        // Arity drift mid-recording.
        let err = ReplayTrace::parse("{\"u_p1\":0.5}\n{\"u_p1\":0.5,\"u_p2\":0.5}").unwrap_err();
        assert_eq!(err.line, 2);
        let err = ReplayTrace::parse("").unwrap_err();
        assert_eq!(err.line, 0);
    }

    #[test]
    fn factory_rejects_arity_mismatch_as_replay_error() {
        let trace = ReplayTrace::parse("{\"u_p1\":0.5}").unwrap();
        let err = trace
            .build_plant(&workloads::simple(), &SimConfig::default())
            .map(|_| ())
            .unwrap_err();
        assert!(
            matches!(err, CoreError::Replay(ref e) if e.reason.contains("workload has 2")),
            "got {err:?}"
        );
    }

    #[test]
    fn string_values_and_escapes_are_skipped_cleanly() {
        let trace =
            ReplayTrace::parse("{\"note\":\"a, \\\"quoted\\\" comma\",\"u_p1\":0.125}").unwrap();
        assert_eq!(trace.rows[0], vec![0.125]);
    }
}
