//! Time-series traces recorded by closed-loop runs.

use eucon_math::Vector;

/// Per-period fault and health annotations (all empty/false in a
/// fault-free run).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StepAnnotations {
    /// Processors down (crashed) during this period.
    pub crashed: Vec<usize>,
    /// The controller reported [`eucon_control::ControlMode::Degraded`]
    /// (a supervisory wrapper's fallback law was in charge).
    pub degraded: bool,
    /// The controller returned an error this period (previous rates kept).
    pub control_error: bool,
    /// Processors whose actuation lane dropped this period's rate command.
    pub actuation_dropped: Vec<usize>,
    /// Processors whose feedback lane was partitioned from the controller
    /// this period (no report out, no command in).
    pub partitioned: Vec<usize>,
}

impl StepAnnotations {
    /// Whether anything noteworthy happened this period.
    pub fn any(&self) -> bool {
        !self.crashed.is_empty()
            || self.degraded
            || self.control_error
            || !self.actuation_dropped.is_empty()
            || !self.partitioned.is_empty()
    }
}

/// One sampling period's record.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStep {
    /// Simulation time at the end of the period.
    pub time: f64,
    /// True measured utilization `u(k)` per processor over the period.
    pub utilization: Vector,
    /// What the controller actually received after sensor faults and the
    /// feedback lanes — `None` whenever identical to `utilization` (the
    /// common fault-free case records no extra vector).
    pub received: Option<Vector>,
    /// Task rates in force during the *next* period (controller output).
    pub rates: Vector,
    /// Fault and health annotations for the period.
    pub annotations: StepAnnotations,
}

impl TraceStep {
    /// A fault-free step: the controller received exactly what the
    /// monitors measured.
    pub fn clean(time: f64, utilization: Vector, rates: Vector) -> Self {
        TraceStep {
            time,
            utilization,
            received: None,
            rates,
            annotations: StepAnnotations::default(),
        }
    }

    /// The utilization vector the controller acted on (`received` when
    /// the lanes or sensor faults mutated the report, else the true
    /// measurement).
    pub fn seen(&self) -> &Vector {
        self.received.as_ref().unwrap_or(&self.utilization)
    }
}

/// The full trace of a closed-loop run: one [`TraceStep`] per sampling
/// period, in order.
///
/// # Example
///
/// ```
/// use eucon_core::{ClosedLoop, ControllerSpec};
/// use eucon_sim::SimConfig;
/// use eucon_tasks::workloads;
///
/// # fn main() -> Result<(), eucon_core::CoreError> {
/// let mut cl = ClosedLoop::builder(workloads::simple())
///     .sim_config(SimConfig::constant_etf(0.5))
///     .controller(ControllerSpec::Eucon(eucon_control::MpcConfig::simple()))
///     .build()?;
/// let result = cl.run(20);
/// assert_eq!(result.trace.len(), 20);
/// let u1 = result.trace.utilization_series(0);
/// assert_eq!(u1.len(), 20);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    steps: Vec<TraceStep>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace { steps: Vec::new() }
    }

    /// Appends a step.
    pub fn push(&mut self, step: TraceStep) {
        self.steps.push(step);
    }

    /// Number of recorded periods.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The recorded steps.
    pub fn steps(&self) -> &[TraceStep] {
        &self.steps
    }

    /// Utilization of one processor across all periods.
    ///
    /// # Panics
    ///
    /// Panics if `processor` is out of range for any step.
    pub fn utilization_series(&self, processor: usize) -> Vec<f64> {
        self.steps
            .iter()
            .map(|s| s.utilization[processor])
            .collect()
    }

    /// Rate of one task across all periods.
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range for any step.
    pub fn rate_series(&self, task: usize) -> Vec<f64> {
        self.steps.iter().map(|s| s.rates[task]).collect()
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a TraceStep;
    type IntoIter = std::slice::Iter<'a, TraceStep>;

    fn into_iter(self) -> Self::IntoIter {
        self.steps.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(t: f64, u: &[f64], r: &[f64]) -> TraceStep {
        TraceStep::clean(t, Vector::from_slice(u), Vector::from_slice(r))
    }

    #[test]
    fn series_extraction() {
        let mut tr = Trace::new();
        tr.push(step(1000.0, &[0.5, 0.6], &[0.01]));
        tr.push(step(2000.0, &[0.7, 0.8], &[0.02]));
        assert_eq!(tr.len(), 2);
        assert!(!tr.is_empty());
        assert_eq!(tr.utilization_series(1), vec![0.6, 0.8]);
        assert_eq!(tr.rate_series(0), vec![0.01, 0.02]);
    }

    #[test]
    fn iteration() {
        let mut tr = Trace::new();
        tr.push(step(1000.0, &[0.5], &[0.01]));
        let times: Vec<f64> = (&tr).into_iter().map(|s| s.time).collect();
        assert_eq!(times, vec![1000.0]);
    }

    #[test]
    fn seen_prefers_the_received_vector() {
        let mut s = step(1000.0, &[0.5], &[0.01]);
        assert_eq!(s.seen()[0], 0.5, "fault-free: controller saw the truth");
        assert!(!s.annotations.any());
        s.received = Some(Vector::from_slice(&[f64::NAN]));
        s.annotations.crashed.push(0);
        assert!(s.seen()[0].is_nan(), "faulted: controller saw the report");
        assert!(s.annotations.any());
    }

    #[test]
    fn empty_trace() {
        let tr = Trace::new();
        assert!(tr.is_empty());
        assert_eq!(tr.utilization_series(0), Vec::<f64>::new());
    }
}
