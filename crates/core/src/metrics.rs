//! Metrics over utilization series: mean/deviation windows, the paper's
//! acceptability criterion, and settling times.
//!
//! The implementation lives in [`eucon_telemetry::series`] (folded into
//! the telemetry crate so figure binaries and sinks share one statistics
//! layer); this module re-exports it under its historical path, so
//! existing `eucon_core::metrics::*` call sites keep compiling
//! unchanged.
//!
//! For per-run use, prefer the consolidated view behind
//! [`RunResult::metrics`](crate::RunResult::metrics).

pub use eucon_telemetry::series::{
    acceptable, mean_std, settling_hold, settling_index, window, SeriesStats,
};

#[cfg(test)]
mod tests {
    // The behavioral tests moved with the implementation to
    // `eucon_telemetry::series`; here we only pin the re-export surface.
    #[test]
    fn historical_names_resolve() {
        let s = super::mean_std(&[1.0, 3.0]);
        assert_eq!(s.mean, 2.0);
        assert!(super::acceptable(
            super::SeriesStats {
                mean: 0.83,
                std_dev: 0.01
            },
            0.828
        ));
        assert_eq!(super::settling_index(&[0.8, 0.8], 0.8, 0.01, 0), Some(0));
        assert_eq!(super::settling_hold(&[0.8, 0.8], 0.8, 0.01, 0, 2), Some(0));
        assert_eq!(super::window(&[1.0, 2.0], 0, 2).mean, 1.5);
    }
}
