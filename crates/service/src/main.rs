//! `eucon-service` — the multi-tenant control-service daemon.
//!
//! Two modes:
//!
//! * `eucon-service serve [--quarantine N] [--evict N]` — start the
//!   daemon, print the admin address on stdout, and run until an admin
//!   client sends `SHUTDOWN`.
//! * `eucon-service client <addr> <command ...>` — send one admin
//!   command line and print the response.
//!
//! The admin protocol is line-oriented: `PING`, `ATTACH <name>
//! <simple|medium> <etf> [loss=P] [delay=D] [seed=S]`, `DETACH <id>`,
//! `STATS <id>`, `TENANTS`, `EVENTS`, `SHUTDOWN`; responses are zero or
//! more `DATA ...` lines closed by `OK ...` or `ERR ...`.

use std::process::ExitCode;

use eucon_core::{ControlService, EvictionPolicy, ServiceClient};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  eucon-service serve [--quarantine N] [--evict N]\n  \
         eucon-service client <addr> <command ...>"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => serve(&args[1..]),
        Some("client") => client(&args[1..]),
        _ => usage(),
    }
}

fn serve(args: &[String]) -> ExitCode {
    let mut policy = EvictionPolicy::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let value =
            |it: &mut std::slice::Iter<'_, String>| it.next().and_then(|v| v.parse::<u32>().ok());
        match arg.as_str() {
            "--quarantine" => match value(&mut it) {
                Some(n) => policy.quarantine_after = n,
                None => return usage(),
            },
            "--evict" => match value(&mut it) {
                Some(n) => policy.evict_after = n,
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let handle = match ControlService::spawn(policy) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("eucon-service: failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The address line is the machine-readable contract: scripts parse
    // it to find the admin port.
    println!("eucon-service listening on {}", handle.addr());
    let summary = handle.join();
    println!(
        "eucon-service: exiting ({} events, {} tenants detached at shutdown)",
        summary.events.len(),
        summary.reports.len()
    );
    for event in &summary.events {
        println!("  {event:?}");
    }
    ExitCode::SUCCESS
}

fn client(args: &[String]) -> ExitCode {
    let Some(addr) = args.first() else {
        return usage();
    };
    let Ok(addr) = addr.parse() else {
        eprintln!("eucon-service: bad address {addr:?}");
        return ExitCode::from(2);
    };
    let command = args[1..].join(" ");
    if command.is_empty() {
        return usage();
    }
    let mut client = match ServiceClient::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("eucon-service: connect failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    match client.request(&command) {
        Ok(resp) => {
            for line in &resp.data {
                println!("{line}");
            }
            if resp.ok {
                println!("OK {}", resp.status);
                ExitCode::SUCCESS
            } else {
                eprintln!("ERR {}", resp.status);
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("eucon-service: request failed: {e}");
            ExitCode::FAILURE
        }
    }
}
