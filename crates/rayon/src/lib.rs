//! Vendored stand-in for the `rayon` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the small parallel-iterator surface the workspace uses:
//! `par_iter()` / `into_par_iter()` on slices and `Vec`s, `map`, and an
//! order-preserving `collect` (including `collect::<Result<_, _>>()`).
//!
//! Work is executed eagerly on `std::thread::scope` threads pulling from
//! a shared index-tagged queue, so outputs keep their input order and a
//! panic in any closure propagates to the caller.  Experiment fan-outs in
//! this workspace are coarse-grained (each item is a whole simulation
//! run), so queue overhead is irrelevant.
//!
//! The thread count defaults to the machine's available parallelism and
//! can be pinned with `RAYON_NUM_THREADS` (upstream-compatible) or
//! `EUCON_THREADS`.

#![warn(missing_docs)]

use std::sync::Mutex;

/// What `use rayon::prelude::*` is expected to bring into scope.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

/// Number of worker threads used by parallel iterators.
///
/// `RAYON_NUM_THREADS` (or `EUCON_THREADS`) overrides the default of the
/// machine's available parallelism.
pub fn current_num_threads() -> usize {
    for var in ["RAYON_NUM_THREADS", "EUCON_THREADS"] {
        if let Some(n) = std::env::var(var)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Conversion into a parallel iterator (mirrors rayon's trait of the same
/// name).
pub trait IntoParallelIterator {
    /// The type of items yielded.
    type Item: Send;

    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

/// `par_iter()` on borrowed collections (mirrors rayon's
/// `IntoParallelRefIterator`).
pub trait IntoParallelRefIterator<'a> {
    /// The type of borrowed items yielded.
    type Item: Send + 'a;

    /// Returns a parallel iterator over borrowed items.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelIterator for &'a [T] {
    type Item = &'a T;

    fn into_par_iter(self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;

    fn into_par_iter(self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;

    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// A parallel iterator over an already-materialized item list.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Applies `f` to every item on a pool of scoped threads, preserving
    /// input order in the output.
    pub fn map<O: Send, F: Fn(T) -> O + Sync>(self, f: F) -> ParIter<O> {
        ParIter {
            items: parallel_map(self.items, &f),
        }
    }

    /// Collects the (ordered) results; `FromIterator` gives `Vec`,
    /// `Result<Vec<_>, E>`, etc. for free.
    pub fn collect<B: FromIterator<T>>(self) -> B {
        self.items.into_iter().collect()
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the iterator is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

fn parallel_map<T: Send, O: Send, F: Fn(T) -> O + Sync>(items: Vec<T>, f: &F) -> Vec<O> {
    par_map_init(items, None, || (), |(), item| f(item))
}

/// Maps `items` on a pool of work-stealing scoped threads with per-worker
/// state, preserving input order in the output.
///
/// `threads` overrides the pool size (`None` falls back to
/// [`current_num_threads`]); fleets that must reproduce bit-identical
/// results across pool sizes pass it explicitly rather than racing on
/// process-wide environment variables. `init` runs once *inside* each
/// spawned worker, so non-`Send` scratch (solver arenas, RNG state) can
/// live thread-local for the whole batch. With one thread (or one item)
/// everything runs sequentially on the caller's thread — no spawn, same
/// item order.
pub fn par_map_init<T, O, S, I, F>(items: Vec<T>, threads: Option<usize>, init: I, f: F) -> Vec<O>
where
    T: Send,
    O: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> O + Sync,
{
    let n = items.len();
    let threads = threads.unwrap_or_else(current_num_threads).max(1).min(n);
    if threads <= 1 {
        let mut state = init();
        return items.into_iter().map(|item| f(&mut state, item)).collect();
    }

    // Index-tagged work queue; slots collect results in input order.
    let queue: Mutex<Vec<(usize, T)>> = Mutex::new(items.into_iter().enumerate().rev().collect());
    let slots: Vec<Mutex<Option<O>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut state = init();
                loop {
                    let next = queue.lock().expect("work queue poisoned").pop();
                    match next {
                        Some((i, item)) => {
                            *slots[i].lock().expect("result slot poisoned") =
                                Some(f(&mut state, item));
                        }
                        None => break,
                    }
                }
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every queued item produces a result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let out: Vec<usize> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_consumes() {
        let v = vec![String::from("a"), String::from("bb"), String::from("ccc")];
        let out: Vec<usize> = v.into_par_iter().map(|s| s.len()).collect();
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn collects_results_short_circuit_style() {
        let v: Vec<i32> = (0..100).collect();
        let ok: Result<Vec<i32>, String> = v.par_iter().map(|&x| Ok(x + 1)).collect();
        assert_eq!(ok.unwrap().len(), 100);
        let err: Result<Vec<i32>, String> = v
            .par_iter()
            .map(|&x| {
                if x == 50 {
                    Err(format!("boom {x}"))
                } else {
                    Ok(x)
                }
            })
            .collect();
        assert_eq!(err.unwrap_err(), "boom 50");
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<i32> = Vec::new();
        let out: Vec<i32> = empty.into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
        let one: Vec<i32> = vec![7].into_par_iter().map(|x| x * 3).collect();
        assert_eq!(one, vec![21]);
    }

    #[test]
    fn range_fan_out() {
        let squares: Vec<usize> = (0usize..16).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares[15], 225);
    }

    #[test]
    fn par_map_init_matches_sequential_across_thread_counts() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for threads in [1usize, 2, 8] {
            let out = crate::par_map_init(items.clone(), Some(threads), || 0u64, |_s, x| x * x + 1);
            assert_eq!(out, expect, "threads={threads}");
        }
    }

    #[test]
    fn par_map_init_builds_state_per_worker() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let inits = AtomicUsize::new(0);
        let out = crate::par_map_init(
            (0..64usize).collect(),
            Some(4),
            || {
                inits.fetch_add(1, Ordering::SeqCst);
                Vec::<usize>::new()
            },
            |scratch, x| {
                scratch.push(x);
                scratch.len()
            },
        );
        // 4 workers → at most 4 states; each item reuses its worker's state.
        assert!(inits.load(Ordering::SeqCst) <= 4);
        assert_eq!(out.len(), 64);
        // Sequential run threads all items through one state.
        let inits1 = AtomicUsize::new(0);
        let seq = crate::par_map_init(
            (0..64usize).collect(),
            Some(1),
            || {
                inits1.fetch_add(1, Ordering::SeqCst);
                0usize
            },
            |count, _x| {
                *count += 1;
                *count
            },
        );
        assert_eq!(inits1.load(Ordering::SeqCst), 1);
        assert_eq!(seq, (1..=64).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_init_handles_empty_input() {
        let out: Vec<i32> = crate::par_map_init(Vec::<i32>::new(), Some(8), || (), |(), x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            let v: Vec<i32> = (0..8).collect();
            let _: Vec<i32> = v
                .par_iter()
                .map(|&x| {
                    if x == 3 {
                        panic!("worker died");
                    }
                    x
                })
                .collect();
        });
        assert!(result.is_err());
    }
}
