//! QoS portability (paper §3.3): deploy the *same* application on a fast
//! platform and on a slow platform, with zero manual retuning.
//!
//! The execution-time factor models the platform speed: on the fast
//! platform every subtask takes 40% of its estimate (etf = 0.4); on the
//! slow platform it takes 160% (etf = 1.6).  EUCON automatically raises
//! task rates on the fast platform (more value delivered — e.g. higher
//! video frame rates) and lowers them on the slow one, while both
//! platforms end up at exactly the same guaranteed CPU utilization.
//!
//! Run with: `cargo run --example qos_portability`

use eucon::prelude::*;

fn deploy(platform: &str, etf: f64) -> Result<(Vec<f64>, f64), eucon::Error> {
    let workload = workloads::medium();
    let mut cl = ClosedLoop::builder(workload)
        .sim_config(
            SimConfig::constant_etf(etf)
                .exec_model(ExecModel::Uniform { half_width: 0.2 })
                .seed(42),
        )
        .controller(ControllerSpec::Eucon(MpcConfig::medium()))
        .build()?;
    let result = cl.run(200);

    let last = result.trace.steps().last().expect("ran periods");
    let rates: Vec<f64> = (0..6).map(|t| last.rates[t]).collect();
    let u1 = metrics::window(&result.trace.utilization_series(0), 150, 200).mean;
    println!("{platform:<14} etf = {etf:<4}  u(P1) = {u1:.3}");
    Ok((rates, u1))
}

fn main() -> Result<(), eucon::Error> {
    println!("Deploying the MEDIUM application on two platforms...\n");
    let (fast_rates, fast_u) = deploy("fast platform", 0.4)?;
    let (slow_rates, slow_u) = deploy("slow platform", 1.6)?;

    println!("\nconverged rates of T1..T6 (fast / slow):");
    for t in 0..6 {
        let ratio = fast_rates[t] / slow_rates[t];
        println!(
            "  T{}: {:>9.5} / {:>9.5}   (x{ratio:.2})",
            t + 1,
            fast_rates[t],
            slow_rates[t]
        );
    }

    // Same guaranteed utilization on both platforms, very different rates:
    // that is QoS portability without manual performance tuning.
    assert!(
        (fast_u - slow_u).abs() < 0.05,
        "both platforms meet the same guarantee"
    );
    let mean_ratio: f64 = (0..6).map(|t| fast_rates[t] / slow_rates[t]).sum::<f64>() / 6.0;
    assert!(
        mean_ratio > 2.0,
        "the fast platform should sustain much higher rates"
    );
    println!(
        "\nBoth platforms settled at u(P1) ≈ {fast_u:.2}; the fast platform delivers ~{mean_ratio:.1}x the task rates."
    );
    Ok(())
}
