//! Integrating rate adaptation with admission control (the paper's §6.2
//! points to admission control when the utilization-control problem is
//! infeasible; the integration is its stated future work).
//!
//! A disaster-recovery scenario: execution times explode to 25× the
//! estimates (sensor fusion saturating on debris-cluttered imagery).
//! Rate adaptation alone cannot shed enough load, so the supervisor
//! suspends tasks until the system fits, then re-admits them when the
//! scene clears.
//!
//! This is *task-level* admission inside one loop.  For *loop-level*
//! admission — many independent control loops admitted to and evicted
//! from one long-running daemon — see [`eucon::core::service`]
//! (`ControlService`, the `eucon-service` binary) and README
//! "Running as a service".
//!
//! Run with: `cargo run --release --example admission_control`

use eucon::core::admission::{AdaptiveLoop, AdmissionPolicy};
use eucon::prelude::*;

fn main() -> Result<(), eucon::Error> {
    // etf 25 for 80 periods (catastrophic overload), then relief at 0.5.
    let profile = EtfProfile::steps(&[(0.0, 25.0), (80_000.0, 0.5)]);
    let mut al = AdaptiveLoop::new(
        workloads::simple(),
        MpcConfig::simple(),
        AdmissionPolicy::default(),
        SimConfig {
            exec_model: ExecModel::Constant,
            etf: profile,
            seed: 0,
            release_guard: Default::default(),
            processor_speeds: None,
        },
    )?;

    al.run(220);

    println!("admission events:");
    for e in al.events() {
        match e {
            eucon::core::admission::AdmissionEvent::Suspended { period, task } => {
                println!("  period {period:>3}: suspended  {task}");
            }
            eucon::core::admission::AdmissionEvent::Readmitted { period, task } => {
                println!("  period {period:>3}: re-admitted {task}");
            }
            // Runtime-churn events (arrivals/departures) never fire here:
            // this scenario has a static task set.
            other => println!("  {other:?}"),
        }
    }

    let u1 = al.trace().utilization_series(0);
    let overload_tail = metrics::window(&u1, 60, 80);
    let relief_tail = metrics::window(&u1, 180, 220);
    println!(
        "\nP1 utilization: after shedding (draining backlog) {:.3}, after relief {:.3} (set point 0.828)",
        overload_tail.mean, relief_tail.mean
    );

    assert!(
        al.events()
            .iter()
            .any(|e| matches!(e, eucon::core::admission::AdmissionEvent::Suspended { .. })),
        "the overload must force suspensions"
    );
    assert!(
        al.suspended_tasks().is_empty(),
        "relief must bring every task back"
    );
    assert!(
        (relief_tail.mean - 0.828).abs() < 0.05,
        "normal regulation resumes"
    );
    println!("\nLoad shedding kept the system schedulable; every task is running again.");
    Ok(())
}
