//! Overload protection with online set-point changes (paper §3.3).
//!
//! An operator anticipates a burst of best-effort work on processor P1 of
//! a running cluster and lowers its utilization set point from the RMS
//! bound to 0.5 *at run time*.  EUCON redistributes task rates so P1 frees
//! up headroom while the other processors stay at their bounds; later the
//! operator restores the original set point and the system returns.
//!
//! Run with: `cargo run --example overload_protection`

use eucon::prelude::*;

fn main() -> Result<(), eucon::control::ControlError> {
    let workload = workloads::medium();
    let b = rms_set_points(&workload);

    // Drive the controller directly (rather than through ClosedLoop) to
    // show the online API: a live simulator, a live controller, and a
    // set-point change halfway through.
    let mut sim = Simulator::new(
        workload.clone(),
        SimConfig::constant_etf(0.7)
            .exec_model(ExecModel::Uniform { half_width: 0.2 })
            .seed(7),
    );
    let mut ctrl = MpcController::new(&workload, b.clone(), MpcConfig::medium())?;
    let ts = 1000.0;

    let mut phase_mean = [0.0f64; 3];
    let mut phase_count = [0usize; 3];
    println!("  k   phase                u(P1)   u(P2)   u(P3)   u(P4)");
    for k in 1..=240 {
        sim.run_until(k as f64 * ts);
        let u = sim.sample_utilizations();
        let rates = ctrl.step(&u)?;
        sim.set_rates(&rates);

        let phase = match k {
            0..=80 => 0,
            81..=160 => 1,
            _ => 2,
        };
        if k == 80 {
            // Operator lowers P1's set point in anticipation of a burst.
            let mut lowered = b.clone();
            lowered[0] = 0.5;
            ctrl.set_set_points(lowered);
            println!("--- k = {k}: operator lowers B1 to 0.50 ---");
        }
        if k == 160 {
            ctrl.set_set_points(b.clone());
            println!("--- k = {k}: operator restores B1 to {:.3} ---", b[0]);
        }
        if k > 40 {
            phase_mean[phase] += u[0];
            phase_count[phase] += 1;
        }
        if k % 20 == 0 {
            println!(
                "{k:>4}  {:<18} {:>7.3} {:>7.3} {:>7.3} {:>7.3}",
                ["normal", "protected (B1=0.5)", "restored"][phase],
                u[0],
                u[1],
                u[2],
                u[3]
            );
        }
    }

    let means: Vec<f64> = phase_mean
        .iter()
        .zip(phase_count.iter())
        .map(|(s, &c)| s / c as f64)
        .collect();
    println!(
        "\nP1 mean utilization: normal {:.3} -> protected {:.3} -> restored {:.3}",
        means[0], means[1], means[2]
    );
    assert!((means[0] - b[0]).abs() < 0.05);
    assert!(
        (means[1] - 0.5).abs() < 0.05,
        "protected phase must track the lowered set point"
    );
    assert!((means[2] - b[0]).abs() < 0.05);
    println!("P1 tracked every set point the operator requested — overload protection online.");
    Ok(())
}
