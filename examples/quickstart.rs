//! Quickstart: close the EUCON feedback loop on the paper's SIMPLE
//! workload and watch both processors converge to the rate-monotonic
//! utilization bound even though actual execution times are only half the
//! design-time estimates.
//!
//! Run with: `cargo run --example quickstart`

use eucon::prelude::*;

fn main() -> Result<(), eucon::Error> {
    // The paper's SIMPLE configuration (Table 1): 3 end-to-end tasks on 2
    // processors.  The set points default to the Liu–Layland bound,
    // 2(√2 − 1) ≈ 0.828 with two subtasks per processor.
    let workload = workloads::simple();
    let set_points = rms_set_points(&workload);
    println!(
        "workload: {} tasks, {} subtasks, {} processors",
        workload.num_tasks(),
        workload.num_subtasks(),
        workload.num_processors()
    );
    println!("set points: {set_points}");

    // Actual execution times are half the estimates (etf = 0.5) — an
    // open-loop design would underutilize the CPUs by 2x.
    let mut cl = ClosedLoop::builder(workload)
        .sim_config(SimConfig::constant_etf(0.5))
        .controller(ControllerSpec::Eucon(MpcConfig::simple()))
        .build()?;

    println!("\n  k    u(P1)    u(P2)    r(T1)      r(T2)      r(T3)");
    for k in 0..60 {
        let step = cl.step();
        if k % 5 == 0 {
            println!(
                "{k:>4} {:>8.3} {:>8.3} {:>10.5} {:>10.5} {:>10.5}",
                step.utilization[0],
                step.utilization[1],
                step.rates[0],
                step.rates[1],
                step.rates[2],
            );
        }
    }

    let result = cl.into_result();
    let tail = metrics::window(&result.trace.utilization_series(0), 40, 60);
    println!(
        "\nP1 over the last 20 periods: mean {:.4}, std {:.4}",
        tail.mean, tail.std_dev
    );
    println!("deadline miss ratio: {:.4}", result.deadlines.miss_ratio());
    assert!(
        (tail.mean - 0.828).abs() < 0.05,
        "EUCON should converge to the set point"
    );
    println!("EUCON held the utilization at the schedulable bound — all deadlines protected.");
    Ok(())
}
