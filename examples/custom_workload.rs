//! Building a custom distributed application with the public API: an
//! avionics-style surveillance pipeline, checked for stability *before*
//! deployment and then run under execution-time fluctuation.
//!
//! The pipeline mirrors the paper's motivating applications: a visual
//! tracking task whose execution time depends on the number of targets in
//! view, plus telemetry and logging chains, on a 3-processor cluster.
//!
//! Run with: `cargo run --example custom_workload`

use eucon::control::stability;
use eucon::prelude::*;

fn build_pipeline() -> Result<TaskSet, eucon::tasks::TaskError> {
    let mut set = TaskSet::new(3);

    // T1: camera -> tracker -> display (end-to-end across all three
    // processors).  Nominal 5 Hz in time units of ms: rate 1/200.
    set.add_task(
        Task::builder(1.0 / 2000.0, 1.0 / 50.0, 1.0 / 200.0)
            .subtask(ProcessorId(0), 18.0) // frame grab
            .subtask(ProcessorId(1), 45.0) // target tracking (data dependent!)
            .subtask(ProcessorId(2), 12.0) // cockpit display
            .build()?,
    )?;
    // T2: radar telemetry -> fusion.
    set.add_task(
        Task::builder(1.0 / 1500.0, 1.0 / 40.0, 1.0 / 150.0)
            .subtask(ProcessorId(0), 22.0)
            .subtask(ProcessorId(1), 30.0)
            .build()?,
    )?;
    // T3: health monitoring, local to P3.
    set.add_task(
        Task::builder(1.0 / 1000.0, 1.0 / 30.0, 1.0 / 120.0)
            .subtask(ProcessorId(2), 25.0)
            .build()?,
    )?;
    // T4: flight log compression, local to P1.
    set.add_task(
        Task::builder(1.0 / 1800.0, 1.0 / 60.0, 1.0 / 300.0)
            .subtask(ProcessorId(0), 35.0)
            .build()?,
    )?;
    Ok(set)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pipeline = build_pipeline()?;
    let b = rms_set_points(&pipeline);
    println!(
        "pipeline: {} tasks / {} subtasks on {} processors; set points {b}",
        pipeline.num_tasks(),
        pipeline.num_subtasks(),
        pipeline.num_processors()
    );

    // Pre-deployment stability audit: how badly can we have
    // underestimated execution times before the loop destabilizes?
    let f = pipeline.allocation_matrix();
    let cfg = MpcConfig::simple().horizons(3, 1);
    let margin = stability::critical_uniform_gain(&f, &cfg, 50.0, 1e-4)?;
    println!("stability audit: loop tolerates execution times up to {margin:.2}x the estimates");
    assert!(
        margin > 2.0,
        "refuse to deploy with a thin stability margin"
    );

    // Deploy: tracking cost is data dependent — most frames are empty
    // (cheap), but with probability 0.25 targets are in view and a frame
    // costs 2x as much (mean-preserving bimodal model).  Because the load
    // is bursty, we leave a 10% engineering margin below the schedulable
    // bound instead of riding it exactly.
    let targets = b.scale(0.9);
    let mut cl = ClosedLoop::builder(pipeline)
        .sim_config(
            SimConfig::constant_etf(1.0)
                .exec_model(ExecModel::bimodal(2.0, 0.25))
                .seed(2026),
        )
        .controller(ControllerSpec::Eucon(cfg))
        .set_points(targets.clone())
        .build()?;
    let result = cl.run(200);

    println!("\nafter 200 sampling periods:");
    for p in 0..3 {
        let s = metrics::window(&result.trace.utilization_series(p), 100, 200);
        println!(
            "  P{}: mean {:.3} (target {:.3}, bound {:.3}), std {:.3}",
            p + 1,
            s.mean,
            targets[p],
            b[p],
            s.std_dev
        );
        assert!((s.mean - targets[p]).abs() < 0.05);
    }
    println!("deadline miss ratio: {:.4}", result.deadlines.miss_ratio());
    assert!(
        result.deadlines.miss_ratio() < 0.08,
        "margin keeps misses rare"
    );
    println!("\nThe pipeline holds its schedulable bounds under fluctuating tracking load.");
    Ok(())
}
