//! A larger cluster scenario combining the repository's extensions: an
//! 8-processor, 24-task multi-tier server farm (the paper's on-line
//! trading motivation), controlled *decentrally* (one local MPC per
//! processor, the paper's future-work direction) over **real feedback
//! lanes** — controller node and tier nodes exchanging binary frames over
//! loopback TCP, with one period of report delay and 5% report loss on
//! every lane, and quantized actuation.
//!
//! Run with: `cargo run --release --example multi_tier_cluster`

use eucon::prelude::*;

fn main() -> Result<(), eucon::Error> {
    // Synthesize a cluster-scale workload: 24 request pipelines across 8
    // tiers/processors, chains up to 4 stages deep.
    let cluster = workloads::RandomWorkload::new(8, 24)
        .seed(2004)
        .max_chain_len(4)
        .period_range(80.0, 400.0)
        .rate_span(10.0, 10.0)
        .generate();
    let b = rms_set_points(&cluster);
    println!(
        "cluster: {} pipelines / {} stages on {} tiers",
        cluster.num_tasks(),
        cluster.num_subtasks(),
        cluster.num_processors()
    );

    // Decentralized control team over per-tier TCP feedback lanes with
    // realistic effects (1 period delay, 5% report loss); actuators
    // support 32 discrete rates per pipeline.
    let mut cl = DistributedLoop::builder(cluster.clone())
        .sim_config(
            SimConfig::constant_etf(0.6)
                .exec_model(ExecModel::Uniform { half_width: 0.3 })
                .seed(8),
        )
        .controller(ControllerSpec::Decentralized(MpcConfig::medium()))
        .tcp(TcpConfig::default())
        .report_lanes(LaneModel {
            report_delay: 1,
            loss_probability: 0.05,
            seed: 4,
        })
        .quantized_rates(32)
        .build()?;

    let result = cl.run(250);
    let net = cl.transport_stats();
    println!(
        "\nlanes ({}): {} frames sent, {} received, {} lost, {} decode errors",
        cl.backend_name(),
        net.sent,
        net.received,
        net.dropped,
        net.decode_errors
    );
    println!("\ntier utilization after 250 sampling periods (target = RMS bound):");
    let mut worst = 0.0f64;
    for p in 0..cluster.num_processors() {
        let s = metrics::window(&result.trace.utilization_series(p), 150, 250);
        worst = worst.max((s.mean - b[p]).abs());
        println!(
            "  tier {}: mean {:.3} / target {:.3}  (σ {:.3})",
            p + 1,
            s.mean,
            b[p],
            s.std_dev
        );
    }
    println!("\nworst tier error: {worst:.4}");
    println!(
        "end-to-end deadline miss ratio: {:.4}",
        result.deadlines.miss_ratio()
    );
    assert!(
        worst < 0.06,
        "decentralized control must hold every tier near its bound"
    );
    assert_eq!(net.decode_errors, 0, "every frame decodes");

    // The point of decentralization: per-node problems stay small.
    let team =
        DecentralizedController::new(&cluster, b, MpcConfig::medium()).expect("controller team");
    println!(
        "\ncontrol team: {} local controllers, largest owns {} of {} pipelines",
        team.num_controllers(),
        team.max_local_tasks(),
        cluster.num_tasks()
    );
    Ok(())
}
