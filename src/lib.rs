//! # EUCON — End-to-End Utilization Control in Distributed Real-Time Systems
//!
//! A full Rust reproduction of *Lu, Wang & Koutsoukos, "End-to-End
//! Utilization Control in Distributed Real-Time Systems", ICDCS 2004*:
//! the EUCON model-predictive utilization controller, the end-to-end task
//! model, an event-driven distributed real-time system simulator, the
//! linear-algebra and constrained least-squares substrates the controller
//! needs, and the complete evaluation harness of the paper's §7.
//!
//! This facade crate re-exports the workspace crates:
//!
//! * [`math`] — dense matrices, decompositions, eigenvalues.
//! * [`qp`] — `lsqlin`-style constrained least squares (dual active set).
//! * [`tasks`] — end-to-end tasks, allocation matrix `F`, RMS bounds,
//!   the paper's SIMPLE/MEDIUM workloads and a random generator.
//! * [`sim`] — event-driven simulator: RMS scheduling, release guard,
//!   utilization monitors, rate modulators, execution-time factors.
//! * [`control`] — the EUCON MPC, OPEN and PID baselines, stability
//!   analysis.
//! * [`core`] — the closed feedback loop, experiment protocols, metrics,
//!   the multi-tenant [`ControlService`] daemon, and the telemetry
//!   surface (fixed metric registry, span timers, pluggable sinks).
//! * [`net`] — the feedback-lane transport runtime: the [`Transport`]
//!   trait, versioned binary frames, in-process channel and loopback-TCP
//!   backends, the many-lane poll engine, delay/loss middleware.
//!
//! [`Transport`]: prelude::Transport
//! [`ControlService`]: prelude::ControlService
//!
//! # Quickstart (v0.3)
//!
//! One builder, three execution modes — pick with the finisher:
//!
//! ```
//! use eucon::prelude::*;
//!
//! # fn main() -> Result<(), eucon::Error> {
//! // Close the loop on the paper's SIMPLE workload with actual execution
//! // times at half their estimates; EUCON still settles on the RMS bound.
//! let mut cl = LoopBuilder::new(workloads::simple())
//!     .sim_config(SimConfig::constant_etf(0.5))
//!     .controller(ControllerSpec::Eucon(MpcConfig::simple()))
//!     .local()?;
//! let result = cl.run(150);
//! let tail = metrics::window(&result.trace.utilization_series(0), 100, 150);
//! assert!((tail.mean - 0.828).abs() < 0.03);
//! # Ok(())
//! # }
//! ```
//!
//! The same experiment runs distributed over real transport lanes with
//! `.distributed(NetConfig::tcp_poll())`, or as `n` replicas on the
//! work-stealing fleet runner with `.fleet(n)` — and a long-running
//! multi-tenant daemon is one [`ControlService::spawn`] away (see the
//! README's "Running as a service").
//!
//! # Migrating from v0.2
//!
//! * `ClosedLoop::builder(set).build()` → `LoopBuilder::new(set).local()`.
//! * `DistributedLoop::builder(set).tcp(cfg).build()` →
//!   `LoopBuilder::new(set).distributed(NetConfig::tcp())`.
//! * Matching on `eucon::Error` variants → [`Error::kind`] (the stable
//!   [`ErrorKind`] taxonomy); the full layer-specific errors remain
//!   reachable through `source()`.
//! * The v0.2 prelude aliases (`ClosedLoopBuilder`,
//!   `DistributedLoopBuilder`, `FleetConfig` and the layer-error
//!   aliases) were deprecated in 0.3.0 and are now removed, per the
//!   one-release deprecation policy (see the README's migration
//!   section); the originals remain available from [`core`] for code
//!   that needs the mode-specific builders directly.
//!
//! [`ControlService::spawn`]: prelude::ControlService::spawn

#![forbid(unsafe_code)]

use std::fmt;

pub use eucon_control as control;
pub use eucon_core as core;
pub use eucon_math as math;
pub use eucon_net as net;
pub use eucon_qp as qp;
pub use eucon_sim as sim;
pub use eucon_tasks as tasks;

/// Top-level error of the facade: everything the builders, loops,
/// services and transports can fail with, behind one opaque type so
/// application code needs a single `?` conversion.
///
/// Classify with [`Error::kind`] — a small, stable taxonomy — instead
/// of matching on layer-specific error enums; the underlying error
/// remains reachable through [`std::error::Error::source`].
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    repr: Repr,
}

#[derive(Debug, Clone, PartialEq)]
enum Repr {
    Core(core::CoreError),
    Control(control::ControlError),
    Transport(net::TransportError),
    Sim(sim::SimError),
    Task(tasks::TaskError),
}

/// Stable classification of an [`Error`], independent of which layer
/// produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ErrorKind {
    /// A builder or service input failed validation.
    Config,
    /// Controller construction or update failed.
    Controller,
    /// The workload definition was invalid.
    Workload,
    /// A feedback-lane transport or admin connection failed.
    Transport,
    /// Simulator-side configuration (fault plans, probabilities) was
    /// rejected.
    Simulation,
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ErrorKind::Config => "config",
            ErrorKind::Controller => "controller",
            ErrorKind::Workload => "workload",
            ErrorKind::Transport => "transport",
            ErrorKind::Simulation => "simulation",
        })
    }
}

impl Error {
    /// Which part of the stack rejected the operation.
    pub fn kind(&self) -> ErrorKind {
        match &self.repr {
            Repr::Core(core::CoreError::Control(_)) => ErrorKind::Controller,
            Repr::Core(core::CoreError::Task(_)) => ErrorKind::Workload,
            Repr::Core(core::CoreError::Transport(_)) => ErrorKind::Transport,
            Repr::Core(core::CoreError::Sim(_)) => ErrorKind::Simulation,
            // A replay recording stands in for the workload, so its
            // decode failures classify as workload errors.
            Repr::Core(core::CoreError::Replay(_)) => ErrorKind::Workload,
            Repr::Core(_) => ErrorKind::Config,
            Repr::Control(_) => ErrorKind::Controller,
            Repr::Transport(_) => ErrorKind::Transport,
            Repr::Sim(_) => ErrorKind::Simulation,
            Repr::Task(_) => ErrorKind::Workload,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.repr {
            Repr::Core(e) => write!(f, "{e}"),
            Repr::Control(e) => write!(f, "controller failure: {e}"),
            Repr::Transport(e) => write!(f, "transport failure: {e}"),
            Repr::Sim(e) => write!(f, "simulator rejected the configuration: {e}"),
            Repr::Task(e) => write!(f, "invalid workload: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match &self.repr {
            Repr::Core(e) => Some(e),
            Repr::Control(e) => Some(e),
            Repr::Transport(e) => Some(e),
            Repr::Sim(e) => Some(e),
            Repr::Task(e) => Some(e),
        }
    }
}

impl From<core::CoreError> for Error {
    fn from(e: core::CoreError) -> Self {
        Error {
            repr: Repr::Core(e),
        }
    }
}

impl From<control::ControlError> for Error {
    fn from(e: control::ControlError) -> Self {
        Error {
            repr: Repr::Control(e),
        }
    }
}

impl From<net::TransportError> for Error {
    fn from(e: net::TransportError) -> Self {
        Error {
            repr: Repr::Transport(e),
        }
    }
}

impl From<net::FrameError> for Error {
    fn from(e: net::FrameError) -> Self {
        Error {
            repr: Repr::Transport(net::TransportError::Frame(e)),
        }
    }
}

impl From<sim::SimError> for Error {
    fn from(e: sim::SimError) -> Self {
        Error { repr: Repr::Sim(e) }
    }
}

impl From<tasks::TaskError> for Error {
    fn from(e: tasks::TaskError) -> Self {
        Error {
            repr: Repr::Task(e),
        }
    }
}

/// Convenient single-import surface for applications (the v0.3 API).
pub mod prelude {
    pub use crate::{Error, ErrorKind};
    pub use eucon_control::{
        ControlMode, ControlPenalty, DecentralizedController, IndependentPid, MpcConfig,
        MpcController, OpenLoop, RateController, Supervised, SupervisorConfig, SupervisorReport,
    };
    pub use eucon_core::{
        factory_fn, metrics, render, telemetry, AdminResponse, ClosedLoop, ControlService,
        ControllerFactory, ControllerSpec, DistributedLoop, EvictionPolicy, FaultSummary,
        FleetPlan, FleetReport, LaneEngine, LaneModel, LoopBuilder, NetBackend, NetConfig, Plant,
        PlantFactory, ReplayError, ReplayPlant, ReplayTrace, RunMetrics, RunResult, ServiceClient,
        ServiceHandle, ServiceSummary, SimPlant, SimPlantFactory, SteadyRun, TenantEvent,
        TenantHealth, TenantId, TenantReport, TenantSpec, VaryingRun,
    };
    #[cfg(feature = "os-plant")]
    pub use eucon_core::{OsPlant, OsPlantConfig};
    pub use eucon_math::{Matrix, Vector};
    pub use eucon_net::{TcpConfig, Transport, TransportStats};
    pub use eucon_sim::{
        EtfProfile, ExecModel, FaultPlan, RandomCrashes, SensorFaultKind, SimConfig, Simulator,
    };
    pub use eucon_tasks::{
        liu_layland_bound, rms_set_points, workloads, ProcessorId, Task, TaskId, TaskSet,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_classifies_every_layer() {
        let e: Error = core::CoreError::Config("bad".into()).into();
        assert_eq!(e.kind(), ErrorKind::Config);
        assert!(std::error::Error::source(&e).is_some());

        let e: Error = core::CoreError::Transport(net::TransportError::Disconnected).into();
        assert_eq!(e.kind(), ErrorKind::Transport);

        let e: Error = net::TransportError::Disconnected.into();
        assert_eq!(e.kind(), ErrorKind::Transport);
        assert!(e.to_string().contains("transport failure"));

        let e: Error = control::ControlError::DimensionMismatch("x".into()).into();
        assert_eq!(e.kind(), ErrorKind::Controller);
        assert!(e.to_string().contains("controller failure"));

        let e: Error = tasks::TaskError::EmptyTaskSet.into();
        assert_eq!(e.kind(), ErrorKind::Workload);

        let e: Error = sim::SimError::InvalidProbability {
            what: "loss",
            value: 2.0,
        }
        .into();
        assert_eq!(e.kind(), ErrorKind::Simulation);

        // A replay recording stands in for the workload.
        let replay = core::ReplayTrace::parse("not json").unwrap_err();
        let e: Error = core::CoreError::from(replay).into();
        assert_eq!(e.kind(), ErrorKind::Workload);
        assert!(e.to_string().contains("invalid replay recording"), "{e}");
    }

    #[test]
    fn source_reaches_the_layer_error() {
        let e: Error =
            core::CoreError::Control(control::ControlError::DimensionMismatch("h".into())).into();
        assert_eq!(e.kind(), ErrorKind::Controller);
        let src = std::error::Error::source(&e).unwrap();
        assert!(src.downcast_ref::<core::CoreError>().is_some());
        // The chain continues one level deeper to the control layer.
        assert!(src
            .source()
            .unwrap()
            .downcast_ref::<control::ControlError>()
            .is_some());
    }

    #[test]
    fn question_mark_converts_from_the_builders() {
        fn build() -> Result<(), Error> {
            use crate::prelude::*;
            let _ = LoopBuilder::new(workloads::simple()).local()?;
            let _ = LoopBuilder::new(workloads::simple()).distributed(NetConfig::channel())?;
            Ok(())
        }
        build().unwrap();
    }

    #[test]
    fn mode_specific_builders_remain_reachable_through_core() {
        // The deprecated prelude aliases are gone (one-release policy);
        // the originals stay addressable for direct users.
        fn build() -> Result<(), Error> {
            use crate::prelude::*;
            let b: crate::core::ClosedLoopBuilder = ClosedLoop::builder(workloads::simple());
            let _ = b.build()?;
            Ok(())
        }
        build().unwrap();
    }
}
