//! # EUCON — End-to-End Utilization Control in Distributed Real-Time Systems
//!
//! A full Rust reproduction of *Lu, Wang & Koutsoukos, "End-to-End
//! Utilization Control in Distributed Real-Time Systems", ICDCS 2004*:
//! the EUCON model-predictive utilization controller, the end-to-end task
//! model, an event-driven distributed real-time system simulator, the
//! linear-algebra and constrained least-squares substrates the controller
//! needs, and the complete evaluation harness of the paper's §7.
//!
//! This facade crate re-exports the workspace crates:
//!
//! * [`math`] — dense matrices, decompositions, eigenvalues.
//! * [`qp`] — `lsqlin`-style constrained least squares (dual active set).
//! * [`tasks`] — end-to-end tasks, allocation matrix `F`, RMS bounds,
//!   the paper's SIMPLE/MEDIUM workloads and a random generator.
//! * [`sim`] — event-driven simulator: RMS scheduling, release guard,
//!   utilization monitors, rate modulators, execution-time factors.
//! * [`control`] — the EUCON MPC, OPEN and PID baselines, stability
//!   analysis.
//! * [`core`] — the closed feedback loop, experiment protocols, metrics,
//!   and the telemetry surface (fixed metric registry, span timers,
//!   pluggable sinks — re-exported from `eucon-telemetry`).
//!
//! # Quickstart
//!
//! ```
//! use eucon::prelude::*;
//!
//! # fn main() -> Result<(), eucon::core::CoreError> {
//! // Close the loop on the paper's SIMPLE workload with actual execution
//! // times at half their estimates; EUCON still settles on the RMS bound.
//! let mut cl = ClosedLoop::builder(workloads::simple())
//!     .sim_config(SimConfig::constant_etf(0.5))
//!     .controller(ControllerSpec::Eucon(MpcConfig::simple()))
//!     .build()?;
//! let result = cl.run(150);
//! let tail = metrics::window(&result.trace.utilization_series(0), 100, 150);
//! assert!((tail.mean - 0.828).abs() < 0.03);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use eucon_control as control;
pub use eucon_core as core;
pub use eucon_math as math;
pub use eucon_qp as qp;
pub use eucon_sim as sim;
pub use eucon_tasks as tasks;

/// Convenient single-import surface for applications.
pub mod prelude {
    pub use eucon_control::{
        ControlMode, ControlPenalty, DecentralizedController, IndependentPid, MpcConfig,
        MpcController, OpenLoop, RateController, Supervised, SupervisorConfig, SupervisorReport,
    };
    pub use eucon_core::{
        factory_fn, metrics, render, telemetry, ClosedLoop, ControllerFactory, ControllerSpec,
        FaultSummary, LaneModel, RunMetrics, RunResult, SteadyRun, VaryingRun,
    };
    pub use eucon_math::{Matrix, Vector};
    pub use eucon_sim::{
        EtfProfile, ExecModel, FaultPlan, RandomCrashes, SensorFaultKind, SimConfig, Simulator,
    };
    pub use eucon_tasks::{
        liu_layland_bound, rms_set_points, workloads, ProcessorId, Task, TaskId, TaskSet,
    };
}
