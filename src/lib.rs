//! # EUCON — End-to-End Utilization Control in Distributed Real-Time Systems
//!
//! A full Rust reproduction of *Lu, Wang & Koutsoukos, "End-to-End
//! Utilization Control in Distributed Real-Time Systems", ICDCS 2004*:
//! the EUCON model-predictive utilization controller, the end-to-end task
//! model, an event-driven distributed real-time system simulator, the
//! linear-algebra and constrained least-squares substrates the controller
//! needs, and the complete evaluation harness of the paper's §7.
//!
//! This facade crate re-exports the workspace crates:
//!
//! * [`math`] — dense matrices, decompositions, eigenvalues.
//! * [`qp`] — `lsqlin`-style constrained least squares (dual active set).
//! * [`tasks`] — end-to-end tasks, allocation matrix `F`, RMS bounds,
//!   the paper's SIMPLE/MEDIUM workloads and a random generator.
//! * [`sim`] — event-driven simulator: RMS scheduling, release guard,
//!   utilization monitors, rate modulators, execution-time factors.
//! * [`control`] — the EUCON MPC, OPEN and PID baselines, stability
//!   analysis.
//! * [`core`] — the closed feedback loop, experiment protocols, metrics,
//!   and the telemetry surface (fixed metric registry, span timers,
//!   pluggable sinks — re-exported from `eucon-telemetry`).
//! * [`net`] — the feedback-lane transport runtime: the [`Transport`]
//!   trait, versioned binary frames, in-process channel and loopback-TCP
//!   backends, delay/loss middleware.
//!
//! [`Transport`]: prelude::Transport
//!
//! # Quickstart
//!
//! ```
//! use eucon::prelude::*;
//!
//! # fn main() -> Result<(), eucon::Error> {
//! // Close the loop on the paper's SIMPLE workload with actual execution
//! // times at half their estimates; EUCON still settles on the RMS bound.
//! let mut cl = ClosedLoop::builder(workloads::simple())
//!     .sim_config(SimConfig::constant_etf(0.5))
//!     .controller(ControllerSpec::Eucon(MpcConfig::simple()))
//!     .build()?;
//! let result = cl.run(150);
//! let tail = metrics::window(&result.trace.utilization_series(0), 100, 150);
//! assert!((tail.mean - 0.828).abs() < 0.03);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

use std::fmt;

pub use eucon_control as control;
pub use eucon_core as core;
pub use eucon_math as math;
pub use eucon_net as net;
pub use eucon_qp as qp;
pub use eucon_sim as sim;
pub use eucon_tasks as tasks;

/// Top-level error of the facade: everything the builders, loops and
/// transports can fail with, behind one type so application code needs a
/// single `?` conversion.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// Assembling or running a closed loop failed.
    Core(core::CoreError),
    /// Controller construction or update failed.
    Control(control::ControlError),
    /// A feedback-lane transport failed.
    Transport(net::TransportError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Core(e) => write!(f, "{e}"),
            Error::Control(e) => write!(f, "controller failure: {e}"),
            Error::Transport(e) => write!(f, "transport failure: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Core(e) => Some(e),
            Error::Control(e) => Some(e),
            Error::Transport(e) => Some(e),
        }
    }
}

impl From<core::CoreError> for Error {
    fn from(e: core::CoreError) -> Self {
        Error::Core(e)
    }
}

impl From<control::ControlError> for Error {
    fn from(e: control::ControlError) -> Self {
        Error::Control(e)
    }
}

impl From<net::TransportError> for Error {
    fn from(e: net::TransportError) -> Self {
        Error::Transport(e)
    }
}

/// Convenient single-import surface for applications.
pub mod prelude {
    pub use crate::Error;
    pub use eucon_control::{
        ControlMode, ControlPenalty, DecentralizedController, IndependentPid, MpcConfig,
        MpcController, OpenLoop, RateController, Supervised, SupervisorConfig, SupervisorReport,
    };
    pub use eucon_core::{
        factory_fn, metrics, render, telemetry, ClosedLoop, ClosedLoopBuilder, ControllerFactory,
        ControllerSpec, DistributedLoop, DistributedLoopBuilder, FaultSummary, LaneModel,
        NetBackend, NetConfig, RunMetrics, RunResult, SteadyRun, VaryingRun,
    };
    pub use eucon_math::{Matrix, Vector};
    pub use eucon_net::{TcpConfig, Transport, TransportStats};
    pub use eucon_sim::{
        EtfProfile, ExecModel, FaultPlan, RandomCrashes, SensorFaultKind, SimConfig, Simulator,
    };
    pub use eucon_tasks::{
        liu_layland_bound, rms_set_points, workloads, ProcessorId, Task, TaskId, TaskSet,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_wraps_every_layer_with_source_chains() {
        let c: Error = core::CoreError::Config("bad".into()).into();
        assert!(matches!(c, Error::Core(_)));
        assert!(std::error::Error::source(&c).is_some());
        let t: Error = net::TransportError::Disconnected.into();
        assert!(t.to_string().contains("transport failure"));
        let k: Error = control::ControlError::DimensionMismatch("x".into()).into();
        assert!(k.to_string().contains("controller failure"));
    }

    #[test]
    fn question_mark_converts_from_the_builders() {
        fn build() -> Result<(), Error> {
            use crate::prelude::*;
            let _ = ClosedLoop::builder(workloads::simple()).build()?;
            let _ = DistributedLoop::builder(workloads::simple())
                .channel(4)
                .build()?;
            Ok(())
        }
        build().unwrap();
    }
}
